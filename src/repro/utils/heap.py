"""Heap utilities used by the enumeration algorithms.

Two small wrappers around :mod:`heapq`:

* :class:`TieBreakHeap` — a min-heap of ``(key, payload)`` pairs that never
  compares payloads (it inserts a monotone sequence number between the key
  and the payload), so payloads need not be orderable.
* :class:`LazyDeletionHeap` — a min-heap keyed by an external, mutable key
  per item.  Stale entries (whose key changed since insertion) are skipped
  on pop.  This is the standard "lazy decrease-key" idiom used for the
  global priority queue ``Qg`` of Algorithm 2/3, where ``lb`` values of
  queued nodes are updated as edges are loaded.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator


class TieBreakHeap:
    """Min-heap of ``(key, payload)`` pairs with stable tie-breaking.

    Payloads are never compared; ties on the key pop in insertion order.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[Any, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: Any, payload: Any) -> None:
        """Insert ``payload`` with priority ``key``."""
        heapq.heappush(self._heap, (key, next(self._counter), payload))

    def pop(self) -> tuple[Any, Any]:
        """Remove and return the ``(key, payload)`` pair with minimal key."""
        key, _, payload = heapq.heappop(self._heap)
        return key, payload

    def peek(self) -> tuple[Any, Any]:
        """Return (without removing) the minimal ``(key, payload)`` pair."""
        key, _, payload = self._heap[0]
        return key, payload

    def peek_key(self) -> Any:
        """Return the minimal key without removing its entry."""
        return self._heap[0][0]

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate over ``(key, payload)`` pairs in arbitrary (heap) order."""
        for key, _, payload in self._heap:
            yield key, payload


class LazyDeletionHeap:
    """Min-heap with mutable per-item keys and lazy invalidation.

    The current key of an item is obtained through ``key_of`` (a callable
    supplied at construction).  :meth:`push` records the key at insertion
    time; :meth:`pop` and :meth:`peek` silently discard entries whose
    recorded key no longer matches the current key — the caller re-pushes an
    item whenever its key changes (in either direction).  This supports both
    decrease-key and increase-key updates with plain :mod:`heapq`.
    """

    def __init__(self, key_of: Callable[[Any], Any]) -> None:
        self._key_of = key_of
        self._heap: list[tuple[Any, int, Any]] = []
        self._counter = itertools.count()
        self._live: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def push(self, item: Any) -> None:
        """Insert ``item`` (or refresh its key after an update)."""
        key = self._key_of(item)
        self._live[id(item)] = key
        heapq.heappush(self._heap, (key, next(self._counter), item))

    def discard(self, item: Any) -> None:
        """Remove ``item`` from the heap (lazily)."""
        self._live.pop(id(item), None)

    def _skim(self) -> None:
        """Drop stale heap entries from the front."""
        heap = self._heap
        while heap:
            key, _, item = heap[0]
            live_key = self._live.get(id(item), _MISSING)
            if live_key is _MISSING or live_key != key:
                heapq.heappop(heap)
            else:
                return

    def peek(self) -> tuple[Any, Any]:
        """Return the live minimal ``(key, item)`` pair without removing it."""
        self._skim()
        key, _, item = self._heap[0]
        return key, item

    def pop(self) -> tuple[Any, Any]:
        """Remove and return the live minimal ``(key, item)`` pair."""
        self._skim()
        key, _, item = heapq.heappop(self._heap)
        del self._live[id(item)]
        return key, item


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
