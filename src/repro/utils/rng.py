"""Deterministic randomness helpers for workload generation."""

from __future__ import annotations

import random
from typing import Sequence


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an RNG, or ``None``.

    Passing an existing RNG returns it unchanged so composed generators can
    share a stream; passing an int (or ``None``) creates a fresh stream.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return unnormalized Zipf weights ``1/rank**exponent`` for ``n`` ranks.

    Used to draw skewed label distributions (a few hot venue labels, a long
    tail of rare ones) for the DBLP-like citation workload.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Draw one item according to ``weights`` using the supplied RNG."""
    return rng.choices(items, weights=weights, k=1)[0]
