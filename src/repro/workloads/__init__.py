"""Workload builders: the paper's datasets and query sets, scaled down."""

from repro.workloads.datasets import (
    DEFAULT_SCALE,
    PAPER_GD_SIZES,
    PAPER_GS_SIZES,
    DatasetSpec,
    build_dataset,
    dataset_spec,
    default_real_dataset,
    default_synthetic_dataset,
)
from repro.workloads.queries import (
    kgpm_query_suite,
    query_set,
    query_set_with_dsl,
    random_query_graph,
    random_query_tree,
)

__all__ = [
    "DatasetSpec",
    "dataset_spec",
    "build_dataset",
    "default_real_dataset",
    "default_synthetic_dataset",
    "DEFAULT_SCALE",
    "PAPER_GD_SIZES",
    "PAPER_GS_SIZES",
    "random_query_tree",
    "query_set",
    "query_set_with_dsl",
    "random_query_graph",
    "kgpm_query_suite",
]
