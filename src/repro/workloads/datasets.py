"""Named, scaled-down builds of the paper's datasets (Section 6).

The paper evaluates on DBLP subgraphs ``GD1..GD5`` (10^4 .. 10^6 nodes)
and synthetic power-law graphs ``GS1..GS6`` (10^4 .. 2x10^6 nodes).  Pure
Python on a laptop cannot pre-compute million-node transitive closures in
benchmark time, so each ladder is reproduced at 1/20 scale with the same
relative spacing; the scale factor is a parameter, and every builder is
deterministic.

``GD*`` graphs come from :func:`repro.graph.generators.citation_graph`
(the DBLP substitute, see DESIGN.md) and ``GS*`` from
:func:`repro.graph.generators.powerlaw_graph` with the paper's stated
parameters (average out-degree 3, 200 labels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import citation_graph, powerlaw_graph

#: Node counts of the paper's ladders (before scaling).
PAPER_GD_SIZES = {
    "GD1": 10_000,
    "GD2": 50_000,
    "GD3": 100_000,
    "GD4": 200_000,
    "GD5": 1_000_000,
}
PAPER_GS_SIZES = {
    "GS1": 10_000,
    "GS2": 50_000,
    "GS3": 100_000,
    "GS4": 200_000,
    "GS5": 1_000_000,
    "GS6": 2_000_000,
}

#: Default down-scaling factor for laptop-scale pure-Python runs.  Citation
#: closures grow superlinearly (as the paper's Table 2 sizes show — 98 GB
#: for the full DBLP), so the ladder is reproduced at 1/50 scale.
DEFAULT_SCALE = 1 / 50

#: DBLP has 3,136 labels over 1.18M nodes; the substitute keeps roughly the
#: same label-per-node ratio at the scaled sizes.
_DBLP_LABEL_RATIO = 3136 / 1_180_072


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: family, node count, and generator parameters."""

    name: str
    family: str  # "citation" (GD*) or "powerlaw" (GS*)
    num_nodes: int
    num_labels: int
    seed: int

    def build(self) -> LabeledDiGraph:
        """Materialize the graph deterministically."""
        if self.family == "citation":
            return citation_graph(
                self.num_nodes, num_labels=self.num_labels, seed=self.seed
            )
        return powerlaw_graph(
            self.num_nodes, num_labels=self.num_labels, seed=self.seed
        )


def dataset_spec(name: str, scale: float = DEFAULT_SCALE) -> DatasetSpec:
    """Spec for one of the paper's dataset names at the given scale."""
    if name in PAPER_GD_SIZES:
        nodes = max(200, int(PAPER_GD_SIZES[name] * scale))
        # Enough label diversity that distinct-label trees up to ~T50 stay
        # extractable at laptop scale (DBLP itself has far more labels than
        # any query needs).
        labels = max(60, int(nodes * _DBLP_LABEL_RATIO * 25))
        return DatasetSpec(name, "citation", nodes, labels, seed=hash(name) % 10_000)
    if name in PAPER_GS_SIZES:
        nodes = max(200, int(PAPER_GS_SIZES[name] * scale))
        return DatasetSpec(name, "powerlaw", nodes, 200, seed=hash(name) % 10_000)
    raise KeyError(f"unknown dataset {name!r}")


def build_dataset(name: str, scale: float = DEFAULT_SCALE) -> LabeledDiGraph:
    """Build one of ``GD1..GD5`` / ``GS1..GS6`` at the given scale."""
    return dataset_spec(name, scale).build()


def default_real_dataset(scale: float = DEFAULT_SCALE) -> LabeledDiGraph:
    """The paper's default real graph, GD3."""
    return build_dataset("GD3", scale)


def default_synthetic_dataset(scale: float = DEFAULT_SCALE) -> LabeledDiGraph:
    """The paper's default synthetic graph, GS3."""
    return build_dataset("GS3", scale)
