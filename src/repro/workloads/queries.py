"""Query-set generation (Section 6, "Query Set").

The paper generates, per data graph, query sets ``T10..T100`` of rooted
trees that are *subtrees of the run-time graph* extracted by random walks,
so every query has at least one match.  :func:`random_query_tree` samples
such a tree from the transitive closure: starting at a random node, it
repeatedly attaches closure successors of already-picked nodes, keeping
labels distinct (the base setting) or allowing duplicates (Eval-IV).

kGPM query graphs ``Q1..Q4`` (Figure 9) are sampled the same way and then
densified with extra edges between mapped nodes.
"""

from __future__ import annotations

import random

from repro.closure.transitive import TransitiveClosure
from repro.exceptions import QueryError
from repro.graph.digraph import LabeledDiGraph, NodeId
from repro.graph.query import QueryGraph, QueryTree
from repro.utils.rng import make_rng


def random_query_tree(
    closure: TransitiveClosure,
    size: int,
    distinct_labels: bool = True,
    seed: int | random.Random | None = 0,
    max_attempts: int = 200,
    locality: float = 4.0,
) -> QueryTree:
    """Extract a realizable rooted tree query of ``size`` nodes.

    Walks the closure: a random start node becomes the root; children are
    attached by sampling closure successors of already-embedded nodes,
    weighted toward *near* successors (probability proportional to
    ``1 / distance**locality``) — real twig workloads relate closely linked
    entities, and this keeps the embedding's score close to the best
    match's, as in the paper's random-walk extraction over the run-time
    graph.  ``locality=0`` gives the uniform walk.

    With ``distinct_labels=True`` every tree node gets a fresh label (the
    paper's base setting); otherwise labels may repeat (general twig
    queries, Eval-IV).  Raises :class:`QueryError` when the graph cannot
    support a tree of the requested size.
    """
    if size < 1:
        raise QueryError(f"query size must be >= 1, got {size}")
    rng = make_rng(seed)
    graph = closure.graph
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes:
        raise QueryError("data graph is empty")

    for _ in range(max_attempts):
        tree = _try_extract_tree(
            closure, graph, nodes, size, distinct_labels, rng, locality
        )
        if tree is not None:
            return tree
    raise QueryError(
        f"could not extract a size-{size} query tree "
        f"(distinct_labels={distinct_labels}) after {max_attempts} attempts"
    )


def _try_extract_tree(
    closure: TransitiveClosure,
    graph: LabeledDiGraph,
    nodes: list[NodeId],
    size: int,
    distinct_labels: bool,
    rng: random.Random,
    locality: float,
) -> QueryTree | None:
    start = rng.choice(nodes)
    labels = {0: graph.label(start)}
    edges: list[tuple[int, int]] = []
    embedded: list[NodeId] = [start]
    used_labels = {graph.label(start)}
    stuck = 0
    while len(embedded) < size and stuck < 10 * size + 20:
        parent_index = rng.randrange(len(embedded))
        succ = closure.successors(embedded[parent_index])
        if not succ:
            stuck += 1
            continue
        candidates = sorted(succ.items(), key=lambda kv: repr(kv[0]))
        if locality > 0:
            weights = [1.0 / (dist ** locality) for _, dist in candidates]
            child = rng.choices([n for n, _ in candidates], weights=weights, k=1)[0]
        else:
            child = rng.choice([n for n, _ in candidates])
        child_label = graph.label(child)
        if distinct_labels and child_label in used_labels:
            stuck += 1
            continue
        index = len(embedded)
        embedded.append(child)
        labels[index] = child_label
        used_labels.add(child_label)
        edges.append((parent_index, index))
        stuck = 0
    if len(embedded) < size:
        return None
    return QueryTree(labels, edges)


def query_set(
    closure: TransitiveClosure,
    size: int,
    count: int,
    distinct_labels: bool = True,
    seed: int = 0,
) -> list[QueryTree]:
    """The paper's ``T<size>`` query set: ``count`` random trees.

    (The paper uses 100 trees per set; benchmarks here default to fewer to
    stay laptop-scale — the count is a parameter.)
    """
    rng = make_rng(seed)
    return [
        random_query_tree(closure, size, distinct_labels=distinct_labels, seed=rng)
        for _ in range(count)
    ]


def query_set_with_dsl(
    closure: TransitiveClosure,
    size: int,
    count: int,
    distinct_labels: bool = True,
    seed: int = 0,
) -> list[tuple[QueryTree, str]]:
    """Like :func:`query_set`, but each tree comes with its DSL text.

    The text is the canonical declarative form (:func:`repro.query.to_dsl`)
    — directly usable as ``repro match --query '...'`` or
    ``engine.top_k(text, k)``, and handy for logging/persisting workloads
    as human-readable strings.  Generated queries use closure-realizable
    labels, so any exotic label falls back to the ``{...}`` escape.
    """
    from repro.query import to_dsl

    return [
        (tree, to_dsl(tree))
        for tree in query_set(
            closure, size, count, distinct_labels=distinct_labels, seed=seed
        )
    ]


def random_query_graph(
    closure: TransitiveClosure,
    size: int,
    extra_edges: int = 1,
    seed: int | random.Random | None = 0,
    max_attempts: int = 200,
) -> QueryGraph:
    """Sample a connected kGPM query graph with ``size`` nodes.

    A realizable tree skeleton is extracted first (over the bidirected
    closure semantics used by kGPM), then up to ``extra_edges`` additional
    edges are added between embedded nodes that are mutually reachable, so
    the graph pattern stays satisfiable.
    """
    rng = make_rng(seed)
    tree = random_query_tree(
        closure, size, distinct_labels=True, seed=rng, max_attempts=max_attempts
    )
    labels = {u: tree.label(u) for u in tree.nodes()}
    edges = [(p, c) for p, c, _ in tree.edges()]
    node_list = list(tree.nodes())
    existing = {frozenset(e) for e in edges}
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 20 * (extra_edges + 1):
        attempts += 1
        u, v = rng.sample(node_list, 2)
        key = frozenset((u, v))
        if key in existing:
            continue
        existing.add(key)
        edges.append((u, v))
        added += 1
    return QueryGraph(labels, edges)


def kgpm_query_suite(
    closure: TransitiveClosure, seed: int = 0
) -> dict[str, QueryGraph]:
    """The Figure 9 suite ``Q1..Q4``: growing size and edge density."""
    rng = make_rng(seed)
    shapes = {
        "Q1": (4, 1),
        "Q2": (5, 1),
        "Q3": (6, 2),
        "Q4": (7, 2),
    }
    return {
        name: random_query_graph(closure, size, extra_edges=extra, seed=rng)
        for name, (size, extra) in shapes.items()
    }
