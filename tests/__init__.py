"""Test suite package (importable so suites share tests.strategies)."""
