"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.figures import _log_fraction, print_bars, render_bars


class TestLogFraction:
    def test_endpoints(self):
        assert _log_fraction(1.0, 1.0, 100.0) == 0.0
        assert _log_fraction(100.0, 1.0, 100.0) == 1.0

    def test_midpoint(self):
        assert _log_fraction(10.0, 1.0, 100.0) == pytest.approx(0.5)

    def test_clamping(self):
        assert _log_fraction(0.001, 1.0, 100.0) == 0.0
        assert _log_fraction(1e9, 1.0, 100.0) == 1.0

    def test_nonpositive_value(self):
        assert _log_fraction(0.0, 1.0, 100.0) == 0.0

    def test_degenerate_range(self):
        assert _log_fraction(5.0, 5.0, 5.0) == 0.0


class TestRenderBars:
    def test_contains_all_series_and_values(self):
        text = render_bars(
            {"fast": [0.01, 0.02], "slow": [1.0, 2.0]}, ["k=10", "k=20"]
        )
        assert "fast" in text and "slow" in text
        assert "k=10:" in text and "k=20:" in text
        assert "2s" in text

    def test_longer_bar_for_larger_value(self):
        text = render_bars({"a": [0.01], "b": [10.0]}, ["x"])
        lines = [l for l in text.splitlines() if "|" in l]
        bar_a = lines[0].split("|")[1].count("#")
        bar_b = lines[1].split("|")[1].count("#")
        assert bar_b > bar_a

    def test_missing_values_render_dash(self):
        text = render_bars({"a": [None, 1.0]}, ["x", "y"])
        assert " -" in text

    def test_all_nonpositive(self):
        assert "no positive values" in render_bars({"a": [0.0]}, ["x"])

    def test_print_bars(self, capsys):
        print_bars({"a": [1.0]}, ["x"], title="demo")
        out = capsys.readouterr().out
        assert "demo" in out and "#" in out
