"""Tests for the benchmark harness."""

import pytest

from repro.bench.experiments import (
    average_runs,
    clear_workbench_cache,
    get_workbench,
    run_algorithm,
)
from repro.bench.harness import (
    AlgoRun,
    fmt_seconds,
    measure,
    print_series,
    print_table,
    speedup_summary,
    time_call,
)
from repro.storage.iostats import IOCostModel, IOCounter


class TestTiming:
    def test_time_call(self):
        seconds, result = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0

    def test_measure_isolates_io(self):
        counter = IOCounter()
        counter.record_read("warmup", 10)

        def work():
            counter.record_read("t", 4)
            return "done"

        run, result = measure("alg", counter, work)
        assert result == "done"
        assert run.io_counter.blocks_read == 1
        assert run.io_counter.entries_read == 4

    def test_algorun_costs(self):
        counter = IOCounter()
        for _ in range(5):
            counter.record_read("t", 1)
        run = AlgoRun(
            "x", cpu_seconds=0.5, io_counter=counter,
            cost_model=IOCostModel(seconds_per_block=0.1, seconds_per_open=0),
        )
        assert run.io_seconds == pytest.approx(0.5)
        assert run.total_seconds == pytest.approx(1.0)


class TestFormatting:
    def test_fmt_seconds_scales(self):
        assert fmt_seconds(2e-6).strip().endswith("us")
        assert fmt_seconds(2e-3).strip().endswith("ms")
        assert fmt_seconds(2.0).strip().endswith("s")

    def test_print_table(self, capsys):
        print_table(["a", "b"], [[1, 2.5], ["xx", 3]], title="T")
        out = capsys.readouterr().out
        assert "T" in out and "xx" in out and "2.5" in out

    def test_print_series(self, capsys):
        print_series("k", [10, 20], {"alg": [0.1, 0.2]}, unit="s")
        out = capsys.readouterr().out
        assert "alg" in out and "0.1s" in out

    def test_speedup_summary(self):
        series = {"slow": [1.0, 4.0], "fast": [0.1, 0.4]}
        text = speedup_summary(series, "slow", "fast")
        assert "10.0x" in text

    def test_speedup_summary_empty(self):
        assert "n/a" in speedup_summary({"a": [0], "b": [0]}, "a", "b")


class TestWorkbench:
    def test_cached(self):
        clear_workbench_cache()
        a = get_workbench("GS1", scale=1 / 100)
        b = get_workbench("GS1", scale=1 / 100)
        assert a is b
        clear_workbench_cache()
        c = get_workbench("GS1", scale=1 / 100)
        assert c is not a

    def test_run_algorithm_phases(self):
        wb = get_workbench("GS1", scale=1 / 100)
        query = wb.query(4, seed=1)
        for alg in ("Topk", "Topk-EN", "DP-B", "DP-P"):
            result = run_algorithm(wb.store, query, 3, alg)
            assert result.matches, alg
            assert result.total_seconds >= 0
            assert result.top1.io_counter.blocks_read >= 0
        with pytest.raises(ValueError):
            run_algorithm(wb.store, query, 3, "nope")

    def test_algorithms_agree_on_workbench(self):
        wb = get_workbench("GS1", scale=1 / 100)
        query = wb.query(5, seed=2)
        scores = {
            alg: [m.score for m in run_algorithm(wb.store, query, 5, alg).matches]
            for alg in ("Topk", "Topk-EN", "DP-B", "DP-P")
        }
        baseline = scores["Topk"]
        assert all(s == baseline for s in scores.values())

    def test_query_sets(self):
        wb = get_workbench("GS1", scale=1 / 100)
        queries = wb.queries(4, count=3, seed=5)
        assert len(queries) == 3

    def test_average_runs(self):
        wb = get_workbench("GS1", scale=1 / 100)
        queries = wb.queries(4, count=2, seed=6)
        summary = average_runs(wb.store, queries, 5, "Topk-EN")
        assert set(summary) == {"total", "top1", "enum", "io", "edges_loaded"}
        assert summary["total"] >= summary["top1"] >= 0
        assert summary["edges_loaded"] >= 0
