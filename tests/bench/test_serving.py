"""Tests for the serving-layer throughput benchmark.

Includes the acceptance check of the serving subsystem: warm plan+result
caches must beat a cold per-call engine by at least 2x on a repeated-
query workload (in practice the margin is orders of magnitude — the
per-call baseline rebuilds the closure every request).
"""

from repro.bench.serving import default_workload, print_serving_report, serving_benchmark
from repro.graph.generators import citation_graph


def test_default_workload_deterministic():
    graph = citation_graph(80, num_labels=6, seed=1)
    first = default_workload(graph, num_queries=5, seed=9)
    second = default_workload(graph, num_queries=5, seed=9)
    assert first == second
    assert len(first) == 5


def test_serving_benchmark_shape_and_speedup():
    report = serving_benchmark(
        num_nodes=120,
        num_queries=4,
        k=5,
        requests=40,
        cold_requests=6,
        workers=(1, 2),
        seed=2,
    )
    assert report["requests"] == 40
    assert [row["workers"] for row in report["workers"]] == [1, 2]
    for mode in ("cold_engine", "service_cold", "service_warm"):
        assert report[mode]["seconds"] > 0
        assert report[mode]["requests_per_second"] > 0
    # The acceptance bar: >= 2x for repeated queries with warm caches vs
    # a cold per-call engine.  The real margin is huge; 2x is the floor.
    assert report["warm_speedup_vs_cold_engine"] >= 2.0
    # Warm pass = pure result-cache hits.
    assert report["result_cache"]["hits"] >= 40


def test_print_serving_report_renders(capsys):
    report = serving_benchmark(
        num_nodes=60, num_queries=3, k=3, requests=9,
        cold_requests=3, workers=(1,), seed=4,
    )
    print_serving_report(report)
    out = capsys.readouterr().out
    assert "serving benchmark" in out
    assert "warm service speedup" in out
    assert "worker scaling" in out


def test_default_workload_escapes_exotic_labels():
    from repro.graph.digraph import graph_from_edges
    from repro.engine import MatchEngine

    graph = graph_from_edges(
        {0: "cs.AI", 1: "db systems", 2: "cs.AI", 3: "db systems"},
        [(0, 1), (2, 3), (0, 3)],
    )
    queries = default_workload(graph, num_queries=4, seed=0)
    engine = MatchEngine(graph, backend="full")
    for query in queries:
        engine.top_k(query, 3)  # must parse + run, not raise QuerySyntaxError


def test_invalid_request_counts_rejected():
    import pytest

    with pytest.raises(ValueError, match="requests"):
        serving_benchmark(num_nodes=40, requests=0)
    from repro.graph.generators import citation_graph as _cg

    with pytest.raises(ValueError, match="num_queries"):
        default_workload(_cg(40, num_labels=4, seed=0), num_queries=0)
