"""Tests for the canonical bench suite and its JSON schema gate."""

import json

import pytest

from repro.bench.suite import (
    BENCH_KIND,
    BENCH_VERSION,
    block_pull_comparison,
    closure_memory_comparison,
    run_suite,
    validate_bench_document,
    write_suite,
)
from repro.cli import main
from repro.graph.generators import citation_graph


@pytest.fixture(scope="module")
def quick_document():
    return run_suite(quick=True, seed=0, nodes=80)


class TestRunSuite:
    def test_document_is_schema_valid(self, quick_document):
        assert validate_bench_document(quick_document) == []

    def test_matrix_is_complete(self, quick_document):
        workload = quick_document["workload"]
        expected = (
            len(workload["backends"])
            * len(workload["algorithms"])
            * len(workload["ks"])
            * len(workload["queries"])
        )
        assert len(quick_document["cells"]) == expected
        for cell in quick_document["cells"]:
            assert cell["wall_seconds"] >= 0.0
            assert cell["matches"] <= max(workload["ks"])

    def test_memory_reduction_at_least_2x(self, quick_document):
        memory = quick_document["closure_memory"]
        assert memory["compact_bytes"] > 0
        assert memory["reduction"] >= 2.0, memory

    def test_block_pulls_faster(self, quick_document):
        pull = quick_document["block_pull"]
        assert pull["entries"] > 0
        assert pull["speedup"] > 1.0, pull

    def test_round_trips_through_disk(self, tmp_path, quick_document):
        path = tmp_path / "bench.json"
        write_suite(path, quick_document)
        loaded = json.loads(path.read_text())
        assert validate_bench_document(loaded) == []
        assert loaded["kind"] == BENCH_KIND
        assert loaded["version"] == BENCH_VERSION

    def test_rss_is_normalized_to_bytes(self, quick_document):
        # ru_maxrss is KiB on Linux and bytes on macOS; the document must
        # always record bytes and say so.
        assert quick_document["peak_rss_unit"] == "bytes"
        # A Python process that just ran the suite occupies well over
        # 4 MiB — a value this small would mean KiB leaked through.
        assert quick_document["peak_rss_bytes"] > 4 * 1024 * 1024

    def test_cold_start_section(self, quick_document):
        cold = quick_document["cold_start"]
        for side in ("json", "binary"):
            assert cold[side]["load_seconds"] > 0.0
            assert cold[side]["total_seconds"] >= cold[side]["load_seconds"]
            assert cold[side]["index_bytes"] > 0
            assert cold[side]["peak_rss_bytes"] > 0
        # Both processes answered the same query identically.
        assert cold["json"]["matches"] == cold["binary"]["matches"]
        # Only the binary format serves from a mapping.
        assert cold["binary"]["mapped_bytes"] == cold["binary"]["index_bytes"]
        assert cold["json"]["mapped_bytes"] == 0
        assert cold["speedup"] > 0.0 and cold["load_speedup"] > 0.0


class TestComparisons:
    def test_closure_memory_fields(self):
        graph = citation_graph(60, num_labels=8, seed=3)
        memory = closure_memory_comparison(graph)
        assert memory["pair_count"] > 0
        assert memory["dict_bytes"] > memory["compact_bytes"] > 0

    def test_block_pull_scans_every_entry(self):
        graph = citation_graph(60, num_labels=8, seed=3)
        pull = block_pull_comparison(graph, block_size=16)
        assert pull["entries"] > 0
        assert pull["legacy_seconds"] > 0.0
        assert pull["compact_seconds"] > 0.0


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_bench_document([]) == ["document is not a JSON object"]

    def test_rejects_missing_fields(self):
        errors = validate_bench_document(
            {"kind": BENCH_KIND, "version": BENCH_VERSION}
        )
        assert any("missing field" in e for e in errors)

    def test_rejects_unknown_versions(self):
        assert validate_bench_document({"version": 99}) == [
            "unsupported version 99"
        ]

    def test_accepts_legacy_v1_documents(self, quick_document):
        legacy = json.loads(json.dumps(quick_document))
        legacy["version"] = 1
        legacy["peak_rss_kb"] = 12345
        for field in ("peak_rss_bytes", "peak_rss_unit", "cold_start"):
            del legacy[field]
        assert validate_bench_document(legacy) == []

    def test_asserts_rss_unit(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        broken["peak_rss_unit"] = "kb"
        errors = validate_bench_document(broken)
        assert any("peak_rss_unit" in e for e in errors)

    def test_rejects_broken_cold_start(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        del broken["cold_start"]["binary"]["load_seconds"]
        broken["cold_start"]["json"]["peak_rss_bytes"] = -1
        errors = validate_bench_document(broken)
        assert any("cold_start.binary missing 'load_seconds'" in e for e in errors)
        assert any("cold_start.json.peak_rss_bytes is negative" in e for e in errors)

    def test_rejects_wrong_kind_and_broken_cells(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        broken["kind"] = "something-else"
        assert any("kind is" in e for e in validate_bench_document(broken))
        broken = json.loads(json.dumps(quick_document))
        del broken["cells"][0]["wall_seconds"]
        broken["cells"][1]["blocks_read"] = "many"
        errors = validate_bench_document(broken)
        assert any("missing 'wall_seconds'" in e for e in errors)
        assert any("blocks_read" in e for e in errors)


class TestCLI:
    def test_suite_and_validate_commands(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "suite", "--quick", "--nodes", "80", "--out", str(out)]
        ) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["bench", "validate", str(out)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "nope"}))
        # Schema findings exit 1 (the CLI's uniform findings code);
        # exit 2 is reserved for usage errors like a missing file.
        assert main(["bench", "validate", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_validate_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["bench", "validate", str(tmp_path / "ghost.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestShardingSection:
    def test_sharding_section_shape(self, quick_document):
        sharding = quick_document["sharding"]
        assert sharding["cpu_count"] >= 1
        for run in (sharding["baseline"], sharding["baseline_cached"]):
            assert run["requests"] > 0
            assert run["throughput_qps"] > 0.0
            assert run["p50_ms"] <= run["p99_ms"]
        assert sharding["configs"], "at least one sharded config must run"
        for config in sharding["configs"]:
            assert config["effective_shards"] <= config["shards"]
            assert config["clients"] >= 1
            assert config["speedup_vs_single"] > 0.0
            assert config["requests"] > 0

    def test_v3_document_requires_sharding(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        del broken["sharding"]
        errors = validate_bench_document(broken)
        assert any("sharding" in e for e in errors)
        broken = json.loads(json.dumps(quick_document))
        del broken["sharding"]["baseline"]
        broken["sharding"]["configs"][0].pop("speedup_vs_single")
        errors = validate_bench_document(broken)
        assert any("baseline" in e for e in errors)
        assert any("speedup_vs_single" in e for e in errors)

    def test_v2_documents_still_validate(self, quick_document):
        legacy = json.loads(json.dumps(quick_document))
        legacy["version"] = 2
        del legacy["sharding"]
        assert validate_bench_document(legacy) == []

    def test_committed_bench_documents_validate(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for name in sorted(root.glob("BENCH_*.json")):
            document = json.loads(name.read_text())
            assert validate_bench_document(document) == [], name.name


class TestMixedRwSection:
    def test_mixed_rw_section_shape(self, quick_document):
        mixed = quick_document["mixed_rw"]
        assert mixed["updates"] > 0
        for name in ("delta_apply", "eager_apply", "rebuild_apply"):
            section = mixed[name]
            assert section["batches"] > 0
            assert section["mean_ms"] > 0.0
            assert section["p50_ms"] <= section["p99_ms"]
        for name in (
            "read_baseline", "reads_during_writes", "reads_during_compaction"
        ):
            assert mixed[name]["requests"] > 0
            assert mixed[name]["p50_ms"] <= mixed[name]["p99_ms"]

    def test_delta_apply_beats_whole_snapshot_rebuild(self, quick_document):
        """The acceptance figure: logging a delta must be >= 5x cheaper
        than rebuilding the snapshot per batch (in practice it is orders
        of magnitude)."""
        mixed = quick_document["mixed_rw"]
        assert mixed["apply_speedup_vs_rebuild"] >= 5.0, mixed

    def test_v4_document_requires_mixed_rw(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        del broken["mixed_rw"]
        errors = validate_bench_document(broken)
        assert any("mixed_rw" in e for e in errors)
        broken = json.loads(json.dumps(quick_document))
        del broken["mixed_rw"]["delta_apply"]["p99_ms"]
        broken["mixed_rw"]["read_baseline"]["requests"] = -1
        broken["mixed_rw"]["apply_speedup_vs_rebuild"] = "fast"
        errors = validate_bench_document(broken)
        assert any("delta_apply missing 'p99_ms'" in e for e in errors)
        assert any("read_baseline.requests is negative" in e for e in errors)
        assert any("apply_speedup_vs_rebuild" in e for e in errors)

    def test_v3_documents_still_validate(self, quick_document):
        legacy = json.loads(json.dumps(quick_document))
        legacy["version"] = 3
        del legacy["mixed_rw"]
        assert validate_bench_document(legacy) == []


class TestReplicationSection:
    def test_replication_section_shape(self, quick_document):
        replication = quick_document["replication"]
        assert replication["cpu_count"] >= 1
        assert replication["shards"] >= 2
        assert replication["replication"] >= 2
        for name in ("baseline", "failover", "single_restart"):
            run = replication[name]
            assert run["requests"] > 0
            assert run["throughput_qps"] > 0.0
            assert run["p50_ms"] <= run["p99_ms"]
        for name in ("failover", "single_restart"):
            run = replication[name]
            assert run["kill_at"] < run["requests"]
        # R=1 has nowhere to fail over: the next scatter to each shard
        # must pay an inline restart before it can answer.  The R=2 run
        # recovers by failover *or* by background revival (whichever the
        # read cursor reaches first) and its respawns may still be in
        # flight when stats are read, so no per-counter claim is safe.
        assert replication["single_restart"]["worker_restarts"] >= 1
        assert replication["failover"]["failovers"] >= 0
        assert replication["failover_post_kill_p99_speedup"] >= 0.0

    def test_v5_document_requires_replication(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        del broken["replication"]
        errors = validate_bench_document(broken)
        assert any("replication" in e for e in errors)
        broken = json.loads(json.dumps(quick_document))
        del broken["replication"]["failover"]["post_kill_p99_ms"]
        broken["replication"]["baseline"]["requests"] = -3
        broken["replication"]["failover_post_kill_p99_speedup"] = "fast"
        errors = validate_bench_document(broken)
        assert any("failover missing 'post_kill_p99_ms'" in e for e in errors)
        assert any("baseline.requests is negative" in e for e in errors)
        assert any("failover_post_kill_p99_speedup" in e for e in errors)

    def test_v4_documents_still_validate(self, quick_document):
        legacy = json.loads(json.dumps(quick_document))
        legacy["version"] = 4
        del legacy["replication"]
        assert validate_bench_document(legacy) == []


class TestCompiledSection:
    def test_compiled_section_shape(self, quick_document):
        compiled = quick_document["compiled"]
        assert compiled["plans"], "the workload must plan at least one query"
        for plan in compiled["plans"]:
            assert plan["tier"] in ("compiled", "interpreted")
        for name in ("interpreter", "kernel"):
            mode = compiled[name]
            assert mode["requests"] > 0
            assert mode["throughput_qps"] > 0.0
            assert mode["p50_ms"] <= mode["p99_ms"]
        numpy_mode = compiled["kernel_numpy"]
        if numpy_mode is not None:
            assert numpy_mode["requests"] == compiled["kernel"]["requests"]
            assert numpy_mode["throughput_qps"] > 0.0

    def test_kernel_beats_interpreter(self, quick_document):
        """The acceptance figure: the compiled tier must answer hot
        repeated queries at >= 1.5x the interpreter's throughput (in
        practice it is several times faster)."""
        assert quick_document["compiled"]["speedup_kernel"] >= 1.5, (
            quick_document["compiled"]
        )

    def test_v6_document_requires_compiled(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        del broken["compiled"]
        errors = validate_bench_document(broken)
        assert any("compiled" in e for e in errors)
        broken = json.loads(json.dumps(quick_document))
        del broken["compiled"]["kernel"]["p99_ms"]
        broken["compiled"]["interpreter"]["requests"] = -1
        broken["compiled"]["speedup_kernel"] = "fast"
        errors = validate_bench_document(broken)
        assert any("kernel missing 'p99_ms'" in e for e in errors)
        assert any("interpreter.requests is negative" in e for e in errors)
        assert any("speedup_kernel" in e for e in errors)

    def test_kernel_numpy_may_be_null(self, quick_document):
        # Runners without numpy record null for the vectorized mode.
        document = json.loads(json.dumps(quick_document))
        document["compiled"]["kernel_numpy"] = None
        document["compiled"]["speedup_kernel_numpy"] = None
        assert validate_bench_document(document) == []

    def test_v5_documents_still_validate(self, quick_document):
        legacy = json.loads(json.dumps(quick_document))
        legacy["version"] = 5
        del legacy["compiled"]
        assert validate_bench_document(legacy) == []
