"""Compact-vs-dict closure equivalence (the PR-4 refactor safety net).

The array-backed :class:`TransitiveClosure` must produce *identical*
distance maps to the straightforward dict-of-dicts construction it
replaced, on random unit-weight and weighted graphs from the shared
strategies — plus agree when the optional numpy acceleration path is
switched on.
"""

import pytest
from hypothesis import given, settings

from repro.closure.transitive import TransitiveClosure
from repro.graph.traversal import single_source_distances
from tests.strategies import graphs, weighted_graphs


def dict_closure(graph):
    """The pre-compact layout: one dict row per source."""
    return {
        source: single_source_distances(graph, source)
        for source in graph.nodes()
    }


def assert_equivalent(graph):
    reference = dict_closure(graph)
    closure = TransitiveClosure(graph)
    assert closure.num_pairs == sum(len(row) for row in reference.values())
    for source, row in reference.items():
        assert dict(closure.successors(source)) == row
        for target, dist in row.items():
            assert closure.distance(source, target) == dist
    decoded = {}
    for tail, head, dist in closure.pairs():
        decoded.setdefault(tail, {})[head] = dist
    assert decoded == {s: r for s, r in reference.items() if r}


class TestEquivalence:
    @given(graphs(min_nodes=2, max_nodes=16, max_edges=45))
    @settings(max_examples=50, deadline=None)
    def test_unit_graphs(self, g):
        assert_equivalent(g)

    @given(weighted_graphs(min_nodes=2, max_nodes=14, max_edges=40, max_weight=6))
    @settings(max_examples=50, deadline=None)
    def test_weighted_graphs(self, g):
        assert_equivalent(g)

    @given(graphs(min_nodes=2, max_nodes=12, max_edges=30))
    @settings(max_examples=20, deadline=None)
    def test_numpy_path_is_bit_identical(self, g):
        pytest.importorskip("numpy")
        from repro.compact import accel

        plain = TransitiveClosure(g)
        patcher = pytest.MonkeyPatch()
        try:
            patcher.setenv("REPRO_COMPACT_NUMPY", "1")
            patcher.setattr(accel, "_cache", [])
            accelerated = TransitiveClosure(g)
        finally:
            patcher.undo()
        assert sorted(plain.pairs()) == sorted(accelerated.pairs())

    @given(graphs(min_nodes=2, max_nodes=14, max_edges=35))
    @settings(max_examples=30, deadline=None)
    def test_stats_schema(self, g):
        stats = TransitiveClosure(g).stats()
        assert set(stats) == {
            "pair_count", "bytes_estimate", "build_seconds", "partial",
        }
        assert stats["pair_count"] == TransitiveClosure(g).num_pairs
        assert stats["bytes_estimate"] > 0
        assert stats["build_seconds"] >= 0.0
