"""Tests for label-constrained closure pre-computation."""

import pytest

from repro.closure.constrained import (
    constrained_closure,
    constrained_sources,
    constrained_store,
    tail_labels_of_queries,
)
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import citation_graph
from repro.graph.query import WILDCARD, QueryTree
from repro.runtime.graph import build_runtime_graph
from repro.workloads import random_query_tree


class TestTailLabels:
    def test_non_leaf_labels_collected(self):
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        assert tail_labels_of_queries([q]) == {"a", "b"}

    def test_union_over_queries(self):
        q1 = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        q2 = QueryTree({0: "x", 1: "y"}, [(0, 1)])
        assert tail_labels_of_queries([q1, q2]) == {"a", "x"}

    def test_wildcard_tail_disables_restriction(self):
        q = QueryTree({0: "a", 1: WILDCARD, 2: "c"}, [(0, 1), (1, 2)])
        assert tail_labels_of_queries([q]) is None

    def test_wildcard_leaf_is_fine(self):
        q = QueryTree({0: "a", 1: WILDCARD}, [(0, 1)])
        assert tail_labels_of_queries([q]) == {"a"}


class TestConstrainedSources:
    def test_sources_match_labels(self, figure4_graph):
        q = QueryTree({0: "c", 1: "d"}, [(0, 1)])
        sources = constrained_sources(figure4_graph, [q])
        assert sources == ["v3", "v4", "v5", "v6"]

    def test_wildcard_returns_none(self, figure4_graph):
        q = QueryTree({0: "a", 1: WILDCARD, 2: "d"}, [(0, 1), (1, 2)])
        assert constrained_sources(figure4_graph, [q]) is None


class TestEquivalence:
    def test_same_results_for_covered_queries(self, figure4_graph, figure4_query):
        full = ClosureStore.build(figure4_graph)
        small = constrained_store(figure4_graph, [figure4_query])
        assert small.closure.is_partial
        want = [
            m.score
            for m in TopkEnumerator(
                build_runtime_graph(full, figure4_query)
            ).top_k(4)
        ]
        got_topk = [
            m.score
            for m in TopkEnumerator(
                build_runtime_graph(small, figure4_query)
            ).top_k(4)
        ]
        got_en = [m.score for m in TopkEN(small, figure4_query).top_k(4)]
        assert got_topk == got_en == want == [3, 4, 5, 6]

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_equivalence(self, seed):
        g = citation_graph(250, num_labels=25, seed=seed)
        closure = TransitiveClosure(g)
        query = random_query_tree(closure, 5, seed=seed)
        full = ClosureStore(g, closure)
        small = constrained_store(g, [query])
        want = [m.score for m in TopkEN(full, query).top_k(10)]
        got = [m.score for m in TopkEN(small, query).top_k(10)]
        assert got == want

    def test_closure_is_smaller(self):
        g = citation_graph(300, num_labels=30, seed=3)
        closure = TransitiveClosure(g)
        query = random_query_tree(closure, 4, seed=1)
        small = constrained_closure(g, [query])
        assert small.num_pairs < closure.num_pairs

    def test_wildcard_falls_back_to_full(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        q = QueryTree({0: "a", 1: WILDCARD, 2: "b"}, [(0, 1), (1, 2)])
        closure = constrained_closure(g, [q])
        assert not closure.is_partial
