"""Tests for the hybrid hot/cold closure store."""

import random

import pytest

from repro.closure.hybrid import HybridStore
from repro.closure.store import ClosureStore
from repro.core.topk_en import TopkEN
from repro.exceptions import ClosureError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryTree


class TestConstruction:
    def test_hot_fraction_bounds(self, figure4_graph):
        with pytest.raises(ClosureError):
            HybridStore(figure4_graph, hot_fraction=-0.1)
        with pytest.raises(ClosureError):
            HybridStore(figure4_graph, hot_fraction=1.5)

    def test_extreme_fractions(self, figure4_graph):
        cold = HybridStore(figure4_graph, hot_fraction=0.0)
        hot = HybridStore(figure4_graph, hot_fraction=1.0)
        assert len(cold.hot_pairs) == 0
        stats = hot.storage_statistics()
        assert stats["hot_pairs"] == stats["total_pairs"]
        assert stats["hot_storage_fraction"] == 1.0

    def test_hot_pairs_are_the_biggest(self, figure4_graph):
        store = HybridStore(figure4_graph, hot_fraction=0.3)
        counts = store._materialized.closure.same_type_statistics()
        if not store.hot_pairs:
            pytest.skip("fraction too small for this graph")
        coldest_hot = min(counts[p] for p in store.hot_pairs)
        hottest_cold = max(
            (c for p, c in counts.items() if p not in store.hot_pairs),
            default=0,
        )
        assert coldest_hot >= hottest_cold


class TestTableEquivalence:
    @pytest.mark.parametrize("fraction", [0.0, 0.4, 1.0])
    def test_groups_match_materialized(self, figure4_graph, fraction):
        hybrid = HybridStore(figure4_graph, hot_fraction=fraction, block_size=2)
        full = ClosureStore.build(figure4_graph, block_size=2)
        for head in ("v7", "v5"):
            for alpha in ("a", "c"):
                assert (
                    hybrid.incoming_group(head, alpha).peek_unmetered()
                    == full.incoming_group(head, alpha).peek_unmetered()
                )

    def test_d_and_e_tables_match(self, figure4_graph):
        hybrid = HybridStore(figure4_graph, hot_fraction=0.5)
        full = ClosureStore.build(figure4_graph)
        assert hybrid.read_d_table("c", "d") == full.read_d_table("c", "d")
        assert hybrid.read_e_table("c", "d") == full.read_e_table("c", "d")

    def test_distances(self, figure4_graph):
        hybrid = HybridStore(figure4_graph, hot_fraction=0.5)
        assert hybrid.distance("v1", "v7") == 2
        assert hybrid.distance("v7", "v1") is None
        assert hybrid.has_direct_edge("v1", "v2")


class TestEnginesOverHybrid:
    @pytest.mark.parametrize("seed", range(12))
    def test_topk_en_agrees_at_any_fraction(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 13), rng.randint(8, 30), num_labels=4, seed=seed
        )
        labels = sorted(g.labels())
        rng.shuffle(labels)
        size = min(len(labels), rng.randint(2, 4))
        q = QueryTree(
            {i: labels[i] for i in range(size)},
            [(rng.randrange(i), i) for i in range(1, size)],
        )
        reference = [
            m.score for m in TopkEN(ClosureStore.build(g), q).top_k(10)
        ]
        for fraction in (0.0, 0.3, 1.0):
            hybrid = HybridStore(g, hot_fraction=fraction, block_size=4)
            got = [m.score for m in TopkEN(hybrid, q).top_k(10)]
            assert got == reference, (seed, fraction)

    def test_storage_fraction_sublinear(self):
        # Hot lists concentrate storage: 20% of pairs should hold well
        # over 20% of the entries on a skewed citation graph.
        from repro.graph.generators import citation_graph

        g = citation_graph(400, num_labels=25, seed=2)
        hybrid = HybridStore(g, hot_fraction=0.2)
        stats = hybrid.storage_statistics()
        assert stats["hot_storage_fraction"] > 0.4


class TestStatsNoDoubleCount:
    """Regression: stats() must count structures shared between the hot
    and cold sides exactly once (the naive materialized + ondemand sum
    double-counted every backward-search cache entry — each one
    re-derives a closure pair the hot tables already materialize)."""

    def _warmed_hybrid(self):
        from repro.graph.generators import citation_graph

        graph = citation_graph(120, num_labels=10, seed=5)
        hybrid = HybridStore(graph, hot_fraction=0.2)
        # Route queries through the cold side so the on-demand cache
        # actually fills (all-cold pairs exist at hot_fraction=0.2).
        for label in sorted(graph.labels(), key=repr):
            hybrid.read_d_table(None, label)
        return hybrid

    def test_hybrid_bounded_by_sides_minus_shared(self):
        hybrid = self._warmed_hybrid()
        materialized = hybrid._materialized.stats()
        ondemand = hybrid._ondemand.stats()
        shared = hybrid.shared_stats()
        stats = hybrid.stats()
        # The cold side genuinely cached something, so the naive sum
        # genuinely over-counts — the bound below is strict.
        assert shared["pair_count"] > 0
        for key in ("pair_count", "bytes_estimate"):
            assert stats[key] == materialized[key] + ondemand[key] - shared[key]
            assert stats[key] <= materialized[key] + ondemand[key] - shared[key]
            assert stats[key] < materialized[key] + ondemand[key]

    def test_cached_cold_reads_do_not_inflate_pair_count(self):
        hybrid = self._warmed_hybrid()
        # Every closure pair exists once in the hot tables; the cold
        # cache must not make the hybrid look bigger than full + 2-hop.
        full_pairs = hybrid._materialized.stats()["pair_count"]
        pll_entries = hybrid._ondemand.distance_index.index_size()
        assert hybrid.stats()["pair_count"] == full_pairs + pll_entries
