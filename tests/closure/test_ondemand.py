"""Tests for the on-demand closure store."""

import random

import pytest

from repro.closure.ondemand import OnDemandStore
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.baseline_dpp import DPPEnumerator
from repro.core.topk_en import TopkEN
from repro.graph.generators import citation_graph, erdos_renyi_graph
from repro.graph.query import QueryTree


@pytest.fixture
def od_store(figure4_graph):
    return OnDemandStore(figure4_graph, block_size=2)


class TestTableEquivalence:
    def test_incoming_group_matches_materialized(self, figure4_graph, od_store):
        mat = ClosureStore(
            figure4_graph, TransitiveClosure(figure4_graph), block_size=2
        )
        for head in ("v7", "v5", "v2"):
            for alpha in ("a", "c", None):
                got = od_store.incoming_group(head, alpha).peek_unmetered()
                want = mat.incoming_group(head, alpha).peek_unmetered()
                assert got == want, (head, alpha)

    def test_d_table_matches(self, figure4_graph, od_store):
        mat = ClosureStore.build(figure4_graph)
        assert od_store.read_d_table("c", "d") == mat.read_d_table("c", "d")
        assert od_store.read_d_table("a", "c") == mat.read_d_table("a", "c")
        assert od_store.read_d_table("d", "a") == {}

    def test_e_table_matches(self, figure4_graph, od_store):
        mat = ClosureStore.build(figure4_graph)
        assert od_store.read_e_table("c", "d") == mat.read_e_table("c", "d")
        assert od_store.read_e_table("a", None) == mat.read_e_table("a", None)

    def test_distance_via_pll(self, figure4_graph, od_store):
        tc = TransitiveClosure(figure4_graph)
        for u in figure4_graph.nodes():
            for v in figure4_graph.nodes():
                assert od_store.distance(u, v) == tc.distance(u, v)

    def test_direct_edges(self, figure4_graph, od_store):
        assert od_store.has_direct_edge("v1", "v5")
        assert not od_store.has_direct_edge("v1", "v7")


class TestCaching:
    def test_backward_search_cached(self, figure4_graph, od_store):
        od_store.incoming_group("v7", "c")
        searches = od_store.searches_run
        od_store.incoming_group("v7", "a")  # same head, different label
        assert od_store.searches_run == searches

    def test_statistics(self, figure4_graph, od_store):
        od_store.incoming_group("v7", "c")
        stats = od_store.cache_statistics()
        assert stats["searches_run"] >= 1
        assert stats["groups_materialized"] >= 1
        assert stats["pll_entries"] > 0


class TestEnginesRunUnchanged:
    @pytest.mark.parametrize("seed", range(15))
    def test_topk_en_agrees(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 13), rng.randint(8, 32), num_labels=4, seed=seed
        )
        labels = sorted(g.labels())
        rng.shuffle(labels)
        size = min(len(labels), rng.randint(2, 4))
        q = QueryTree(
            {i: labels[i] for i in range(size)},
            [(rng.randrange(i), i) for i in range(1, size)],
        )
        mat = ClosureStore.build(g, block_size=4)
        od = OnDemandStore(g, block_size=4)
        k = rng.choice([1, 5, 20])
        a = [m.score for m in TopkEN(mat, q).top_k(k)]
        b = [m.score for m in TopkEN(od, q).top_k(k)]
        assert a == b

    def test_dpp_agrees(self, figure4_graph, figure4_query, od_store):
        mat = ClosureStore.build(figure4_graph)
        a = [m.score for m in DPPEnumerator(mat, figure4_query).top_k(4)]
        b = [m.score for m in DPPEnumerator(od_store, figure4_query).top_k(4)]
        assert a == b == [3, 4, 5, 6]

    def test_less_material_than_full_closure(self):
        g = citation_graph(300, num_labels=30, seed=1)
        tc = TransitiveClosure(g)
        od = OnDemandStore(g)
        q = QueryTree({0: g.label(200), 1: g.label(100)}, [(0, 1)])
        try:
            TopkEN(od, q).top_k(3)
        except Exception:  # query may be unmatchable; material still counted
            pass
        stats = od.cache_statistics()
        assert stats["cached_entries"] + stats["pll_entries"] < tc.num_pairs
