"""Tests for pruned landmark labeling (2-hop distance index)."""

import pytest
from hypothesis import given, settings

from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.transitive import TransitiveClosure
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import citation_graph, erdos_renyi_graph
from tests.strategies import weighted_graphs


class TestSmallGraphs:
    def test_chain(self):
        g = graph_from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        pll = PrunedLandmarkIndex(g)
        assert pll.distance(0, 2) == 2
        assert pll.distance(2, 0) is None
        assert pll.distance(0, 0) is None

    def test_cycle_self_distance(self):
        g = graph_from_edges(
            {0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)]
        )
        pll = PrunedLandmarkIndex(g)
        assert pll.distance(0, 0) == 3
        assert pll.distance(1, 1) == 3

    def test_weighted(self):
        g = graph_from_edges(
            {0: "a", 1: "b", 2: "c"},
            [(0, 1, 5), (0, 2, 1), (2, 1, 2)],
        )
        pll = PrunedLandmarkIndex(g)
        assert pll.distance(0, 1) == 3

    def test_custom_order(self):
        g = graph_from_edges({0: "a", 1: "b"}, [(0, 1)])
        pll = PrunedLandmarkIndex(g, order=[1, 0])
        assert pll.distance(0, 1) == 1


class TestAgreementWithClosure:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_unit(self, seed):
        g = erdos_renyi_graph(20, 55, seed=seed)
        tc = TransitiveClosure(g)
        pll = PrunedLandmarkIndex(g)
        for u in g.nodes():
            for v in g.nodes():
                assert pll.distance(u, v) == tc.distance(u, v), (u, v)

    @given(weighted_graphs(min_nodes=4, max_nodes=14, max_edges=30, max_weight=4))
    @settings(max_examples=25, deadline=None)
    def test_random_weighted_property(self, g):
        tc = TransitiveClosure(g)
        pll = PrunedLandmarkIndex(g)
        for u in g.nodes():
            for v in g.nodes():
                assert pll.distance(u, v) == tc.distance(u, v), (u, v)

    def test_index_smaller_than_closure_on_dag(self):
        g = citation_graph(400, seed=1)
        tc = TransitiveClosure(g)
        pll = PrunedLandmarkIndex(g)
        # The 2-hop cover should undercut the materialized closure —
        # that is its entire purpose (Section 5, "Managing Closure Size").
        assert pll.index_size() < tc.num_pairs
