"""Tests for the block-organized closure store (L/D/E tables)."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.graph.digraph import graph_from_edges


@pytest.fixture
def store(figure4_graph):
    return ClosureStore(
        figure4_graph, TransitiveClosure(figure4_graph), block_size=2
    )


class TestLGroups:
    def test_incoming_group_sorted_by_distance(self, store):
        table = store.incoming_group("v7", "c")
        entries = table.read_all()
        assert [tail for tail, _, __ in entries] == ["v5", "v6", "v3", "v4"]
        assert [dist for _, dist, __ in entries] == [1, 2, 3, 4]

    def test_incoming_group_direct_flags(self, store):
        entries = store.incoming_group("v7", "a").read_all()
        # v1 reaches v7 only through c-nodes: not a direct edge.
        assert entries == (("v1", 2, False),)

    def test_missing_group_is_empty(self, store):
        assert store.incoming_group("v1", "d").read_all() == ()

    def test_wildcard_group_merges_labels(self, store):
        entries = store.incoming_group("v7", None).read_all()
        tails = [tail for tail, _, __ in entries]
        assert "v1" in tails and "v5" in tails
        dists = [d for _, d, __ in entries]
        assert dists == sorted(dists)

    def test_group_open_metered(self, store):
        before = store.counter.tables_opened
        store.incoming_group("v7", "c")
        assert store.counter.tables_opened == before + 1


class TestPairTables:
    def test_read_pair_table(self, store):
        triples = sorted(store.read_pair_table("c", "d"))
        assert triples == [
            ("v3", "v7", 3),
            ("v4", "v7", 4),
            ("v5", "v7", 1),
            ("v6", "v7", 2),
        ]

    def test_read_pair_table_direct_only(self, store):
        # a -> d only via paths, so the direct-only view is empty.
        assert list(store.read_pair_table("a", "d", direct_only=True)) == []
        direct = sorted(store.read_pair_table("a", "c", direct_only=True))
        assert len(direct) == 4

    def test_read_pair_table_meters_blocks(self, store):
        before = store.counter.blocks_read
        list(store.read_pair_table("c", "d"))
        assert store.counter.blocks_read > before

    def test_wildcard_tail(self, store):
        triples = list(store.read_pair_table(None, "d"))
        tails = {t for t, _, __ in triples}
        assert tails == {"v1", "v3", "v4", "v5", "v6"}


class TestDTables:
    def test_d_values_are_group_minima(self, store):
        d = store.read_d_table("c", "d")
        assert d == {"v7": 1}
        d2 = store.read_d_table("a", "c")
        assert d2 == {"v3": 1, "v4": 1, "v5": 1, "v6": 1}

    def test_d_wildcard_merges_min(self, store):
        d = store.read_d_table(None, "d")
        assert d["v7"] == 1

    def test_missing_pair_empty(self, store):
        assert store.read_d_table("d", "a") == {}


class TestETables:
    def test_e_minimum_outgoing(self, store):
        e = dict(
            (tail, (head, dist))
            for tail, head, dist in store.read_e_table("c", "d")
        )
        assert e == {
            "v3": ("v7", 3),
            "v4": ("v7", 4),
            "v5": ("v7", 1),
            "v6": ("v7", 2),
        }

    def test_e_wildcard_head_takes_overall_min(self, store):
        rows = {t: (h, d) for t, h, d in store.read_e_table("v_label_x", None)}
        assert rows == {}  # unknown tail label
        rows = {t: (h, d) for t, h, d in store.read_e_table("a", None)}
        # v1's global minimum outgoing closure edge has distance 1.
        assert rows["v1"][1] == 1


class TestStatistics:
    def test_size_statistics(self, store):
        stats = store.size_statistics()
        closure = store.closure
        assert stats["l_entries"] == closure.num_pairs
        assert stats["total_entries"] == (
            stats["l_entries"] + stats["d_entries"] + stats["e_entries"]
        )
        assert store.estimated_bytes() == stats["total_entries"] * 12

    def test_estimated_bytes_validation(self, store):
        from repro.exceptions import ClosureError

        with pytest.raises(ClosureError):
            store.estimated_bytes(0)

    def test_group_targets(self, store):
        assert store.group_targets("c", "d") == ["v7"]
        assert set(store.group_targets("a", None)) >= {"v3", "v7"}

    def test_tail_labels_of(self, store):
        assert store.tail_labels_of("v7") == frozenset({"a", "c"})


class TestDistanceProbes:
    def test_distance(self, store):
        assert store.distance("v1", "v7") == 2
        assert store.distance("v7", "v1") is None

    def test_has_direct_edge(self, store):
        assert store.has_direct_edge("v1", "v5")
        assert not store.has_direct_edge("v1", "v7")


def test_store_builds_without_precomputed_closure():
    g = graph_from_edges({0: "a", 1: "b"}, [(0, 1)])
    store = ClosureStore.build(g)
    assert store.distance(0, 1) == 1
