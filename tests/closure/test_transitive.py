"""Tests for transitive-closure computation."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.closure.transitive import TransitiveClosure
from repro.exceptions import ClosureError
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from tests.strategies import weighted_graphs


def chain_graph():
    return graph_from_edges(
        {0: "a", 1: "b", 2: "c"}, [(0, 1, 2), (1, 2, 3)]
    )


class TestBasics:
    def test_chain(self):
        tc = TransitiveClosure(chain_graph())
        assert tc.distance(0, 1) == 2
        assert tc.distance(0, 2) == 5
        assert tc.distance(2, 0) is None
        assert tc.num_pairs == 3

    def test_successors(self):
        tc = TransitiveClosure(chain_graph())
        assert dict(tc.successors(0)) == {1: 2, 2: 5}
        assert dict(tc.successors(2)) == {}

    def test_pairs_iteration(self):
        tc = TransitiveClosure(chain_graph())
        assert sorted(tc.pairs()) == [(0, 1, 2), (0, 2, 5), (1, 2, 3)]

    def test_pairs_with_labels(self):
        tc = TransitiveClosure(chain_graph())
        rows = sorted(tc.pairs_with_labels())
        assert rows[0] == (0, "a", 1, "b", 2)

    def test_build_seconds_recorded(self):
        tc = TransitiveClosure(chain_graph())
        assert tc.build_seconds >= 0.0


class TestPartialClosure:
    def test_restricted_sources(self):
        tc = TransitiveClosure(chain_graph(), sources=[0])
        assert tc.is_partial
        assert tc.distance(0, 2) == 5
        with pytest.raises(ClosureError):
            tc.distance(1, 2)
        with pytest.raises(ClosureError):
            tc.successors(1)


class TestTypeStatistics:
    def test_same_type_counts(self):
        g = graph_from_edges(
            {0: "a", 1: "a", 2: "b"}, [(0, 2), (1, 2)]
        )
        tc = TransitiveClosure(g)
        assert tc.same_type_statistics() == {("a", "b"): 2}
        assert tc.average_theta() == 2.0

    def test_empty_graph_theta(self):
        g = graph_from_edges({0: "a"}, [])
        tc = TransitiveClosure(g)
        assert tc.average_theta() == 0.0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_unit_weight_agreement(self, seed):
        g = erdos_renyi_graph(25, 70, seed=seed)
        tc = TransitiveClosure(g)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((t, h) for t, h, _ in g.edges())
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for u in g.nodes():
            for v in g.nodes():
                expected = lengths.get(u, {}).get(v)
                if u == v:
                    # networkx reports 0 for the empty path; the closure
                    # wants the shortest non-empty cycle instead.
                    continue
                assert tc.distance(u, v) == expected, (u, v)

    @given(weighted_graphs(min_nodes=4, max_nodes=15, max_edges=35, max_weight=5))
    @settings(max_examples=20, deadline=None)
    def test_weighted_agreement(self, weighted):
        tc = TransitiveClosure(weighted)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(weighted.nodes())
        nxg.add_weighted_edges_from(weighted.edges())
        for u in weighted.nodes():
            lengths = nx.single_source_dijkstra_path_length(nxg, u)
            for v in weighted.nodes():
                if u == v:
                    continue
                assert tc.distance(u, v) == lengths.get(v), (u, v)

    @pytest.mark.parametrize("seed", range(4))
    def test_self_cycle_distances(self, seed):
        g = erdos_renyi_graph(12, 40, seed=seed + 40)
        tc = TransitiveClosure(g)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((t, h) for t, h, _ in g.edges())
        for v in g.nodes():
            best = None
            for w in nxg.successors(v):
                try:
                    cand = 1 + nx.shortest_path_length(nxg, w, v)
                except nx.NetworkXNoPath:
                    continue
                if best is None or cand < best:
                    best = cand
            assert tc.distance(v, v) == best, v
