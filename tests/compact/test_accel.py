"""The numpy acceleration flag stays optional (never required, never fatal)."""

from repro.compact import accel


def test_numpy_flag_is_optional(monkeypatch):
    monkeypatch.setenv("REPRO_COMPACT_NUMPY", "0")
    assert accel.numpy_or_none() is None
    monkeypatch.setenv("REPRO_COMPACT_NUMPY", "1")
    assert accel.numpy_enabled()
    # numpy may or may not be installed; either answer is valid, but the
    # call must never raise.
    accel.numpy_or_none()
