"""CSR graph tests: adjacency fidelity and search agreement."""

from hypothesis import given, settings

from repro.compact import CompactGraph, NodeInterner
from repro.graph.digraph import graph_from_edges
from repro.graph.traversal import single_source_distances
from tests.strategies import graphs, weighted_graphs


def compact_of(graph):
    return CompactGraph(graph, NodeInterner.from_graph(graph))


class TestAdjacency:
    def test_edges_round_trip(self):
        g = graph_from_edges(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b", 2.0), ("b", "c", 1.0), ("a", "c", 5.0)],
        )
        cg = compact_of(g)
        interner = cg.interner
        decoded = set()
        for node in g.nodes():
            node_id = interner.intern(node)
            for target_id, weight in cg.out_edges(node_id):
                decoded.add((node, interner.resolve(target_id), weight))
        assert decoded == set(g.edges())

    @given(weighted_graphs(min_nodes=2, max_nodes=18, max_edges=50))
    @settings(max_examples=40, deadline=None)
    def test_degrees_and_has_edge(self, g):
        cg = compact_of(g)
        interner = cg.interner
        for node in g.nodes():
            node_id = interner.intern(node)
            assert cg.out_degree(node_id) == g.out_degree(node)
            assert cg.in_degree(node_id) == g.in_degree(node)
        for tail, head, weight in g.edges():
            assert cg.has_edge(interner.intern(tail), interner.intern(head))
        # In-adjacency mirrors out-adjacency.
        forward = {
            (interner.resolve(s), interner.resolve(t))
            for s in range(cg.num_nodes)
            for t, _ in cg.out_edges(s)
        }
        backward = {
            (interner.resolve(t), interner.resolve(s))
            for s in range(cg.num_nodes)
            for t, _ in cg.in_edges(s)
        }
        assert forward == backward == {(t, h) for t, h, _ in g.edges()}


class TestSearches:
    @given(graphs(min_nodes=2, max_nodes=16, max_edges=40))
    @settings(max_examples=40, deadline=None)
    def test_unit_forward_agrees_with_traversal(self, g):
        cg = compact_of(g)
        interner = cg.interner
        for node in g.nodes():
            targets, dists = cg.shortest_from(interner.intern(node))
            got = {
                interner.resolve(targets[k]): dists[k]
                for k in range(len(targets))
            }
            assert got == single_source_distances(g, node)

    @given(weighted_graphs(min_nodes=2, max_nodes=14, max_edges=35, max_weight=5))
    @settings(max_examples=40, deadline=None)
    def test_weighted_forward_agrees_with_traversal(self, g):
        cg = compact_of(g)
        interner = cg.interner
        for node in g.nodes():
            targets, dists = cg.shortest_from(interner.intern(node))
            got = {
                interner.resolve(targets[k]): dists[k]
                for k in range(len(targets))
            }
            assert got == single_source_distances(g, node)

    @given(weighted_graphs(min_nodes=2, max_nodes=14, max_edges=35, max_weight=4))
    @settings(max_examples=30, deadline=None)
    def test_backward_is_forward_transposed(self, g):
        cg = compact_of(g)
        forward = {
            (s, t): d
            for s in range(cg.num_nodes)
            for t, d in zip(*cg.shortest_from(s))
        }
        backward = {
            (s, t): d
            for t in range(cg.num_nodes)
            for s, d in zip(*cg.shortest_to(t))
        }
        assert forward == backward

    def test_targets_are_id_sorted(self):
        g = graph_from_edges(
            {1: "A", 2: "B", 3: "B", 4: "C"},
            [(1, 3), (1, 2), (3, 4), (2, 4)],
        )
        cg = compact_of(g)
        for s in range(cg.num_nodes):
            targets, _ = cg.shortest_from(s)
            assert list(targets) == sorted(targets)
