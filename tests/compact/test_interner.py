"""Property tests for the NodeInterner: round trips and label geometry."""

import pytest
from hypothesis import given, settings

from repro.compact import NodeInterner
from repro.exceptions import GraphError
from tests.strategies import graphs, label_maps


class TestBasics:
    def test_empty(self):
        interner = NodeInterner({})
        assert len(interner) == 0
        assert interner.labels() == ()
        assert len(interner.label_range("A")) == 0

    def test_unknown_node(self):
        interner = NodeInterner({"x": "A"})
        assert interner.get("y") is None
        with pytest.raises(GraphError):
            interner.intern("y")

    def test_label_of_out_of_range(self):
        interner = NodeInterner({"x": "A"})
        with pytest.raises(GraphError):
            interner.label_of(1)
        with pytest.raises(GraphError):
            interner.label_of(-1)

    def test_mixed_id_types(self):
        interner = NodeInterner({0: "A", "zero": "A", (1, 2): "B"})
        ids = {interner.intern(0), interner.intern("zero"), interner.intern((1, 2))}
        assert ids == {0, 1, 2}


class TestProperties:
    @given(label_maps(min_nodes=1, max_nodes=40))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_identity(self, labeled):
        interner = NodeInterner(labeled)
        assert len(interner) == len(labeled)
        for node in labeled:
            assert interner.resolve(interner.intern(node)) == node
        for node_id in range(len(interner)):
            assert interner.intern(interner.resolve(node_id)) == node_id

    @given(label_maps(min_nodes=1, max_nodes=40))
    @settings(max_examples=60, deadline=None)
    def test_label_ranges_partition_the_id_space(self, labeled):
        interner = NodeInterner(labeled)
        covered = []
        for label, id_range in interner.label_ranges():
            assert len(id_range) > 0
            covered.extend(id_range)
            for node_id in id_range:
                assert interner.label_of(node_id) == label
                assert labeled[interner.resolve(node_id)] == label
        # Contiguous, non-overlapping, and exhaustive.
        assert covered == list(range(len(interner)))

    @given(label_maps(min_nodes=1, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_id_order_is_repr_order_within_a_label(self, labeled):
        interner = NodeInterner(labeled)
        for _, id_range in interner.label_ranges():
            members = [interner.resolve(i) for i in id_range]
            assert members == sorted(members, key=repr)

    @given(graphs(min_nodes=2, max_nodes=20))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_across_builds(self, graph):
        a = NodeInterner.from_graph(graph)
        b = NodeInterner.from_graph(graph.copy())
        assert a.same_universe(b)
        assert a.nodes() == b.nodes()
