"""Layering contract: repro.compact never imports layers above it.

The CI lint job enforces the same rule with ruff (TID251 banned-api,
``config/ruff-layering.toml``); this test keeps the contract green for
plain ``pytest`` runs and documents the allowlist in one place.
"""

import ast
from pathlib import Path

import repro.compact

#: The only repro modules the compact layer may depend on.
ALLOWED_PREFIXES = ("repro.compact", "repro.graph", "repro.exceptions", "repro.utils")


def iter_repro_imports(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro"):
                yield node.module


def test_compact_only_imports_lower_layers():
    package_dir = Path(repro.compact.__file__).parent
    violations = []
    for source in sorted(package_dir.glob("*.py")):
        for module in iter_repro_imports(source):
            if not module.startswith(ALLOWED_PREFIXES):
                violations.append(f"{source.name}: {module}")
    assert not violations, (
        "repro.compact must stay below the closure layer; "
        f"offending imports: {violations}"
    )


def test_numpy_flag_is_optional(monkeypatch):
    from repro.compact import accel

    monkeypatch.setenv("REPRO_COMPACT_NUMPY", "0")
    assert accel.numpy_or_none() is None
    monkeypatch.setenv("REPRO_COMPACT_NUMPY", "1")
    assert accel.numpy_enabled()
    # numpy may or may not be installed; either answer is valid, but the
    # call must never raise.
    accel.numpy_or_none()
