"""Shared fixtures: small deterministic graphs and paper worked examples."""

from __future__ import annotations

import random

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.query import QueryTree


@pytest.fixture
def diamond_graph() -> LabeledDiGraph:
    """a -> {b1, b2} -> c, with distinct shortest distances."""
    return graph_from_edges(
        {"a0": "a", "b1": "b", "b2": "b", "c0": "c"},
        [("a0", "b1", 1), ("a0", "b2", 2), ("b1", "c0", 1), ("b2", "c0", 1)],
    )


@pytest.fixture
def figure4_graph() -> LabeledDiGraph:
    """The run-time graph of the paper's Figure 4(b), as a data graph.

    One root v1(a) with child v2(b) and four c-children v3..v6, all of
    which reach the single leaf v7(d).  Weights are chosen to reproduce
    the paper's L/H lists: H_{v1,c} = (v5, 2) and L_{v1,c} contains
    (v6, 3), (v3, 4), (v4, 5).
    """
    return graph_from_edges(
        {
            "v1": "a",
            "v2": "b",
            "v3": "c",
            "v4": "c",
            "v5": "c",
            "v6": "c",
            "v7": "d",
        },
        [
            ("v1", "v2", 1),
            ("v1", "v3", 1),
            ("v1", "v4", 1),
            ("v1", "v5", 1),
            ("v1", "v6", 1),
            ("v3", "v7", 3),
            ("v4", "v7", 4),
            ("v5", "v7", 1),
            ("v6", "v7", 2),
        ],
    )


@pytest.fixture
def figure4_query() -> QueryTree:
    """The paper's Figure 4(a): u1(a) -> u2(b), u1 -> u3(c) -> u4(d)."""
    return QueryTree(
        {"u1": "a", "u2": "b", "u3": "c", "u4": "d"},
        [("u1", "u2"), ("u1", "u3"), ("u3", "u4")],
    )


@pytest.fixture
def figure1_graph() -> LabeledDiGraph:
    """A patent-citation graph in the spirit of the paper's Figure 1(b).

    Labels: C (computer science), E (economy), S (social science).  Edge
    weights are all 1; v1 reaches both an E and an S patent directly,
    giving the top-1 match score 2, while v2's best combination scores 3.
    """
    return graph_from_edges(
        {
            "v1": "C",
            "v2": "C",
            "v3": "C",
            "v4": "S",
            "v5": "E",
            "v6": "E",
            "v7": "S",
        },
        [
            ("v1", "v4"),
            ("v1", "v5"),
            ("v2", "v5"),
            ("v5", "v4"),
            ("v2", "v6"),
            ("v6", "v7"),
            ("v3", "v6"),
            ("v3", "v7"),
        ],
    )


@pytest.fixture
def figure1_query() -> QueryTree:
    """Figure 1(a): a C-labeled root with E and S children (both ``//``)."""
    return QueryTree({"uC": "C", "uE": "E", "uS": "S"}, [("uC", "uE"), ("uC", "uS")])


def make_store(graph: LabeledDiGraph, block_size: int = 64) -> ClosureStore:
    """Build a closure store (helper shared by many test modules)."""
    return ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)


@pytest.fixture
def store_factory():
    """Factory fixture wrapping :func:`make_store`."""
    return make_store


def random_tree_query(rng: random.Random, labels: list, max_size: int = 5) -> QueryTree:
    """A random query tree over the given label alphabet (test helper)."""
    size = min(len(labels), rng.randint(2, max_size))
    picked = rng.sample(labels, size)
    nodes = {i: picked[i] for i in range(size)}
    edges = [(rng.randrange(i), i) for i in range(1, size)]
    return QueryTree(nodes, edges)
