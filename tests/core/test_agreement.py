"""Cross-algorithm agreement: the load-bearing correctness evidence.

Randomized and property-based tests that all four algorithms (plus the
general-twig engine) produce exactly the oracle's score sequence, and
that every returned assignment is a valid match with the claimed score.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TreeMatcher
from repro.core.brute_force import all_matches
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryTree
from repro.runtime.graph import assignment_score, build_runtime_graph

ALGS = ("dp-b", "dp-p", "topk", "topk-en")


def random_instance(seed: int):
    """A random (graph, matcher, query) triple with tiny parameters."""
    rng = random.Random(seed)
    g = erdos_renyi_graph(
        rng.randint(5, 14), rng.randint(6, 34), num_labels=rng.randint(3, 5),
        seed=seed,
    )
    tm = TreeMatcher(g, block_size=rng.choice([1, 2, 8, 64]))
    labels = sorted(g.labels())
    rng.shuffle(labels)
    size = min(len(labels), rng.randint(2, 5))
    query = QueryTree(
        {i: labels[i] for i in range(size)},
        [(rng.randrange(i), i) for i in range(1, size)],
    )
    return rng, tm, query


@pytest.mark.parametrize("seed", range(40))
def test_all_algorithms_match_oracle(seed):
    rng, tm, query = random_instance(seed)
    gr = build_runtime_graph(tm.store, query)
    oracle = [m.score for m in all_matches(gr)]
    k = rng.choice([1, 3, 8, 25])
    for alg in ALGS:
        got = tm.top_k(query, k, algorithm=alg)
        assert [m.score for m in got] == oracle[:k], (alg, seed)
        for match in got:
            check = assignment_score(tm.store, query, match.assignment)
            assert check == pytest.approx(match.score), (alg, seed)


@pytest.mark.parametrize("seed", range(12))
def test_weighted_graphs_agree(seed):
    rng = random.Random(seed + 10_000)
    base = erdos_renyi_graph(rng.randint(5, 12), rng.randint(6, 26),
                             num_labels=4, seed=seed)
    g = graph_from_edges(
        {v: base.label(v) for v in base.nodes()},
        [(t, h, rng.randint(1, 6)) for t, h, _ in base.edges()],
    )
    tm = TreeMatcher(g, block_size=rng.choice([2, 16]))
    labels = sorted(g.labels())
    rng.shuffle(labels)
    size = min(len(labels), rng.randint(2, 4))
    query = QueryTree(
        {i: labels[i] for i in range(size)},
        [(rng.randrange(i), i) for i in range(1, size)],
    )
    gr = build_runtime_graph(tm.store, query)
    oracle = [m.score for m in all_matches(gr)]
    for alg in ALGS:
        got = [m.score for m in tm.top_k(query, 12, algorithm=alg)]
        assert got == oracle[:12], (alg, seed)


@given(seed=st.integers(0, 10**9))
@settings(max_examples=30, deadline=None)
def test_agreement_property(seed):
    """Hypothesis-driven variant of the oracle agreement test."""
    rng, tm, query = random_instance(seed)
    gr = build_runtime_graph(tm.store, query)
    oracle = [m.score for m in all_matches(gr)]
    for alg in ("topk", "topk-en"):
        got = [m.score for m in tm.top_k(query, 10, algorithm=alg)]
        assert got == oracle[:10]


@pytest.mark.parametrize("seed", range(10))
def test_deterministic_across_runs(seed):
    _, tm, query = random_instance(seed)
    a = tm.top_k(query, 10, algorithm="topk-en")
    b = TreeMatcher(tm.graph).top_k(query, 10, algorithm="topk-en")
    assert [m.score for m in a] == [m.score for m in b]
    assert [m.assignment for m in a] == [m.assignment for m in b]


@pytest.mark.parametrize("seed", range(10))
def test_prefix_stability(seed):
    """Property: top-k is a prefix of top-(k+5) for every algorithm."""
    _, tm, query = random_instance(seed + 500)
    for alg in ALGS:
        small = tm.top_k(query, 4, algorithm=alg)
        large = tm.top_k(query, 9, algorithm=alg)
        assert [m.score for m in large[: len(small)]] == [m.score for m in small]
