"""Tests for the deprecated TreeMatcher facade (shim over repro.engine)."""

import pytest

from repro.core.api import ALGORITHMS, TreeMatcher, top_k_tree_matches
from repro.graph.query import QueryTree

# The facade is deprecated by design; these tests exercise it on purpose.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture
def matcher(figure4_graph):
    return TreeMatcher(figure4_graph)


def test_all_algorithms_listed():
    assert set(ALGORITHMS) == {"dp-b", "dp-p", "topk", "topk-en", "brute-force"}


def test_default_algorithm(matcher, figure4_query):
    matches = matcher.top_k(figure4_query, 2)
    assert [m.score for m in matches] == [3, 4]


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_every_algorithm_runs(matcher, figure4_query, alg):
    matches = matcher.top_k(figure4_query, 3, algorithm=alg)
    assert [m.score for m in matches][:3] == [3, 4, 5]


def test_brute_force_honors_k(matcher, figure4_query):
    matches = matcher.top_k(figure4_query, 2, algorithm="brute-force")
    assert len(matches) == 2
    assert [m.score for m in matches] == [3, 4]


def test_unknown_algorithm(matcher, figure4_query):
    with pytest.raises(ValueError, match="unknown algorithm"):
        matcher.top_k(figure4_query, 1, algorithm="magic")


def test_engine_exposes_stats(matcher, figure4_query):
    engine = matcher.engine(figure4_query, "topk-en")
    engine.top_k(2)
    assert engine.stats.rounds == 2


def test_engine_is_engine_like_for_brute_force(matcher, figure4_query):
    """The old facade leaked a bare truncated list here; now it is an
    engine-like object with top_k/stream/stats."""
    engine = matcher.engine(figure4_query, "brute-force")
    assert [m.score for m in engine.top_k(2)] == [3, 4]
    assert hasattr(engine, "stream") and hasattr(engine, "stats")


def test_one_shot_helper(figure4_graph, figure4_query):
    matches = top_k_tree_matches(figure4_graph, figure4_query, 1)
    assert matches[0].score == 3


def test_matcher_reusable_across_queries(figure4_graph):
    tm = TreeMatcher(figure4_graph)
    q1 = QueryTree({0: "a", 1: "b"}, [(0, 1)])
    q2 = QueryTree({0: "c", 1: "d"}, [(0, 1)])
    assert tm.top_k(q1, 1)[0].score == 1
    assert tm.top_k(q2, 4)[-1].score == 4


def test_offline_artifacts_exposed(matcher):
    assert matcher.closure.num_pairs > 0
    assert matcher.store.size_statistics()["total_entries"] > 0


class TestDeprecation:
    """Satellite: the old facade warns, loudly and testably."""

    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_tree_matcher_fires_deprecation(self, figure4_graph):
        with pytest.warns(DeprecationWarning, match="repro.engine.MatchEngine"):
            TreeMatcher(figure4_graph)

    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_one_shot_fires_deprecation(self, figure4_graph, figure4_query):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            top_k_tree_matches(figure4_graph, figure4_query, 1)
