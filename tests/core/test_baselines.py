"""Tests for the DP-B and DP-P baselines."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.baseline_dp import DPBEnumerator, dpb_matches
from repro.core.baseline_dpp import DPPEnumerator, dpp_matches
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph


def make_store(graph, block_size=2):
    return ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)


class TestDPB:
    def test_figure4_sequence(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        matches = dpb_matches(gr, 10)
        assert [m.score for m in matches] == [3, 4, 5, 6]
        assert [m.assignment["u3"] for m in matches] == ["v5", "v6", "v3", "v4"]

    def test_top1_score(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        assert DPBEnumerator(gr).top1_score() == 3

    def test_no_match(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        q = QueryTree({0: "b", 1: "a"}, [(0, 1)])
        gr = build_runtime_graph(make_store(g), q)
        engine = DPBEnumerator(gr)
        assert engine.top1_score() is None
        assert engine.top_k(3) == []

    def test_deep_ranks_at_inner_nodes(self):
        # Force rank > 1 requests at inner node streams: two b-nodes each
        # with two c-children of different weights.
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "b1": "b", "c0": "c", "c1": "c"},
            [
                ("a0", "b0", 1),
                ("a0", "b1", 1),
                ("b0", "c0", 1),
                ("b0", "c1", 4),
                ("b1", "c0", 2),
                ("b1", "c1", 3),
            ],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        gr = build_runtime_graph(make_store(g), q)
        matches = dpb_matches(gr, 10)
        assert [m.score for m in matches] == [2, 3, 4, 5]

    def test_stream_replay(self, figure4_graph, figure4_query):
        gr = build_runtime_graph(make_store(figure4_graph), figure4_query)
        engine = DPBEnumerator(gr)
        engine.top_k(2)
        assert len(list(engine.stream())) == 4

    def test_k_negative(self, figure4_graph, figure4_query):
        gr = build_runtime_graph(make_store(figure4_graph), figure4_query)
        with pytest.raises(ValueError):
            DPBEnumerator(gr).top_k(-1)

    def test_multi_child_combinations(self, figure1_graph, figure1_query):
        gr = build_runtime_graph(make_store(figure1_graph), figure1_query)
        matches = dpb_matches(gr, 100)
        assert [m.score for m in matches] == [2, 2, 3, 3, 3, 3]


class TestDPP:
    def test_figure4_sequence(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        matches = dpp_matches(store, figure4_query, 10)
        assert [m.score for m in matches] == [3, 4, 5, 6]

    def test_uses_loose_bound(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = DPPEnumerator(store, figure4_query)
        assert engine.bound == "loose"

    def test_rescan_runs_every_round(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = DPPEnumerator(store, figure4_query)
        matches = engine.top_k(4)
        # The DP rescan is a cost model (per-slot linear minima), recorded
        # after each emission; it must have run and produced a finite sum.
        assert len(matches) == 4
        rescan = engine.stats.extra["dp_rescan_score"]
        assert isinstance(rescan, float) and rescan >= 0

    def test_no_match(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        q = QueryTree({0: "b", 1: "a"}, [(0, 1)])
        assert dpp_matches(make_store(g), q, 3) == []
