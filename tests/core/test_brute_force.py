"""Tests for the brute-force oracle itself."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.brute_force import all_matches, brute_force_topk
from repro.exceptions import MatchingError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph


def make_gr(graph, query):
    store = ClosureStore(graph, TransitiveClosure(graph))
    return build_runtime_graph(store, query)


def test_counts_all_combinations(figure1_graph, figure1_query):
    gr = make_gr(figure1_graph, figure1_query)
    matches = all_matches(gr)
    assert len(matches) == 6
    assert [m.score for m in matches] == [2, 2, 3, 3, 3, 3]


def test_sorted_with_deterministic_ties(figure1_graph, figure1_query):
    gr = make_gr(figure1_graph, figure1_query)
    a = all_matches(gr)
    b = all_matches(gr)
    assert [m.assignment for m in a] == [m.assignment for m in b]


def test_limit_enforced(figure1_graph, figure1_query):
    gr = make_gr(figure1_graph, figure1_query)
    with pytest.raises(MatchingError, match="exceeded"):
        all_matches(gr, limit=3)


def test_topk_prefix(figure1_graph, figure1_query):
    gr = make_gr(figure1_graph, figure1_query)
    assert [m.score for m in brute_force_topk(gr, 2)] == [2, 2]


def test_empty_graph_no_matches():
    g = graph_from_edges({"x": "a"}, [])
    q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
    gr = make_gr(g, q)
    assert all_matches(gr) == []
