"""Tests for diversified top-k (future-work feature)."""

import pytest

from repro.closure.store import ClosureStore
from repro.core.diversity import assignment_distance, diverse_top_k, diversify
from repro.core.matches import Match
from repro.core.topk import TopkEnumerator
from repro.runtime.graph import build_runtime_graph


def m(score, **assignment):
    return Match(assignment=assignment, score=score)


class TestAssignmentDistance:
    def test_identical(self):
        a = m(1, u="x", v="y")
        assert assignment_distance(a, a) == 0

    def test_partial_difference(self):
        assert assignment_distance(m(1, u="x", v="y"), m(2, u="x", v="z")) == 1

    def test_disjoint_keys(self):
        assert assignment_distance(m(1, u="x"), m(2, w="x")) == 2


class TestDiversify:
    def test_filters_near_duplicates(self):
        stream = [
            m(1, u="a", v="b", w="c"),
            m(2, u="a", v="b", w="d"),   # distance 1: dropped
            m(3, u="x", v="y", w="c"),   # distance 2: kept
            m(4, u="a", v="y", w="d"),   # dist 2 from first, 2 from third: kept
        ]
        got = list(diversify(stream, min_distance=2))
        assert [x.score for x in got] == [1, 3, 4]

    def test_min_distance_one_keeps_everything(self):
        stream = [m(1, u="a"), m(2, u="b"), m(3, u="c")]
        assert len(list(diversify(stream, min_distance=1))) == 3

    def test_max_considered(self):
        stream = [m(i, u=f"n{i}") for i in range(10)]
        got = list(diversify(stream, min_distance=1, max_considered=4))
        assert len(got) == 4

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            list(diversify([], min_distance=0))


class TestDiverseTopK:
    def test_on_real_engine(self, figure1_graph, figure1_query):
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        engine = TopkEnumerator(gr)
        plain = engine.top_k(6)
        diverse = diverse_top_k(TopkEnumerator(gr), 3, min_distance=2)
        # Diverse matches are a subsequence of the plain stream...
        plain_keys = [tuple(sorted(m.assignment.items())) for m in plain]
        for match in diverse:
            assert tuple(sorted(match.assignment.items())) in plain_keys
        # ...scores stay non-decreasing...
        scores = [m.score for m in diverse]
        assert scores == sorted(scores)
        # ...and every pair differs in >= 2 positions.
        for i, a in enumerate(diverse):
            for b in diverse[i + 1 :]:
                assert assignment_distance(a, b) >= 2

    def test_greedy_optimality(self, figure1_graph, figure1_query):
        """The first diverse match is the global top-1."""
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        top1 = TopkEnumerator(gr).top_k(1)[0]
        diverse = diverse_top_k(TopkEnumerator(gr), 1, min_distance=3)
        assert diverse[0].score == top1.score

    def test_k_zero(self, figure1_graph, figure1_query):
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        assert diverse_top_k(TopkEnumerator(gr), 0) == []

    def test_k_negative(self, figure1_graph, figure1_query):
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        with pytest.raises(ValueError):
            diverse_top_k(TopkEnumerator(gr), -1)
