"""Failure-mode and edge-condition tests across the pipeline."""

import pytest

from repro import TreeMatcher
from repro.closure.store import ClosureStore
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph


class TestUnmatchableQueries:
    def test_label_absent_from_graph(self, figure4_graph):
        tm = TreeMatcher(figure4_graph)
        q = QueryTree({0: "a", 1: "zz"}, [(0, 1)])
        for alg in ("dp-b", "dp-p", "topk", "topk-en"):
            assert tm.top_k(q, 5, algorithm=alg) == [], alg

    def test_right_labels_wrong_direction(self, figure4_graph):
        tm = TreeMatcher(figure4_graph)
        q = QueryTree({0: "d", 1: "a"}, [(0, 1)])
        for alg in ("dp-b", "dp-p", "topk", "topk-en"):
            assert tm.top_k(q, 5, algorithm=alg) == [], alg

    def test_deep_query_on_shallow_graph(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        tm = TreeMatcher(g)
        q = QueryTree(
            {0: "a", 1: "b", 2: "a", 3: "b"}, [(0, 1), (1, 2), (2, 3)]
        )
        assert tm.top_k(q, 3) == []

    def test_partially_matchable_branches(self):
        # One branch matchable, the other not: zero matches overall.
        g = graph_from_edges(
            {"r": "a", "x": "b"}, [("r", "x")]
        )
        tm = TreeMatcher(g)
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (0, 2)])
        for alg in ("dp-b", "dp-p", "topk", "topk-en"):
            assert tm.top_k(q, 3, algorithm=alg) == [], alg


class TestDegenerateGraphs:
    def test_empty_like_graph(self):
        g = LabeledDiGraph()
        g.add_node("only", "a")
        tm = TreeMatcher(g)
        q = QueryTree({0: "a"}, [])
        matches = tm.top_k(q, 3)
        assert len(matches) == 1 and matches[0].score == 0

    def test_graph_with_no_edges(self):
        g = LabeledDiGraph()
        for i in range(4):
            g.add_node(i, "a")
        tm = TreeMatcher(g)
        q = QueryTree({0: "a", 1: "a"}, [(0, 1)])
        assert tm.top_k(q, 3) == []

    def test_two_node_cycle(self):
        g = graph_from_edges({0: "a", 1: "a"}, [(0, 1), (1, 0)])
        tm = TreeMatcher(g)
        q = QueryTree({0: "a", 1: "a"}, [(0, 1)])
        matches = tm.top_k(q, 10)
        # 0->1, 1->0 at distance 1; 0->0 and 1->1 via the 2-cycle.
        assert [m.score for m in matches] == [1, 1, 2, 2]


class TestInputValidation:
    def test_float_weights_work_end_to_end(self):
        g = graph_from_edges(
            {"a0": "a", "b0": "b"}, [("a0", "b0", 0.125)]
        )
        tm = TreeMatcher(g)
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        assert tm.top_k(q, 1)[0].score == 0.125

    def test_engine_requires_valid_bound(self, figure4_graph, figure4_query):
        from repro.core.topk_en import LazyTopkEngine

        store = ClosureStore.build(figure4_graph)
        with pytest.raises(ValueError):
            LazyTopkEngine(store, figure4_query, bound="tightest")

    def test_mixed_node_id_types(self):
        # Ints, strings and tuples as node ids in one graph.
        g = LabeledDiGraph()
        g.add_node(1, "a")
        g.add_node("s", "b")
        g.add_node(("t", 2), "c")
        g.add_edge(1, "s")
        g.add_edge("s", ("t", 2))
        tm = TreeMatcher(g)
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        matches = tm.top_k(q, 2)
        assert len(matches) == 1
        assert matches[0].assignment[2] == ("t", 2)


class TestLargeKBehaviour:
    def test_k_much_larger_than_results(self, figure1_graph, figure1_query):
        tm = TreeMatcher(figure1_graph)
        for alg in ("dp-b", "dp-p", "topk", "topk-en"):
            matches = tm.top_k(figure1_query, 10_000, algorithm=alg)
            assert len(matches) == 6, alg

    def test_repeated_calls_idempotent(self, figure1_graph, figure1_query):
        tm = TreeMatcher(figure1_graph)
        engine = tm.engine(figure1_query, "topk-en")
        a = [m.score for m in engine.top_k(4)]
        b = [m.score for m in engine.top_k(4)]
        c = [m.score for m in engine.top_k(6)]
        assert a == b == c[:4]


class TestStoreEdgeCases:
    def test_block_size_one(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph, block_size=1)
        gr = build_runtime_graph(store, figure4_query)
        assert [m.score for m in TopkEnumerator(gr).top_k(4)] == [3, 4, 5, 6]
        assert [m.score for m in TopkEN(store, figure4_query).top_k(4)] == [
            3, 4, 5, 6,
        ]

    def test_huge_block_size(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph, block_size=1_000_000)
        assert [m.score for m in TopkEN(store, figure4_query).top_k(4)] == [
            3, 4, 5, 6,
        ]
