"""Property-based invariants of the enumeration machinery.

These check structural laws of Lawler's procedure and the engines'
laziness guarantees over randomized instances — complementary to the
score-agreement tests in ``test_agreement.py``.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.store import ClosureStore
from repro.core.brute_force import all_matches
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph


def random_setup(seed: int):
    rng = random.Random(seed)
    g = erdos_renyi_graph(
        rng.randint(6, 14), rng.randint(8, 34), num_labels=4, seed=seed
    )
    store = ClosureStore.build(g, block_size=rng.choice([2, 8, 64]))
    labels = sorted(g.labels())
    rng.shuffle(labels)
    size = min(len(labels), rng.randint(2, 5))
    query = QueryTree(
        {i: labels[i] for i in range(size)},
        [(rng.randrange(i), i) for i in range(1, size)],
    )
    return rng, store, query


@given(seed=st.integers(0, 10**9))
@settings(max_examples=40, deadline=None)
def test_complete_and_duplicate_free(seed):
    """Exhaustive enumeration visits every match exactly once."""
    _, store, query = random_setup(seed)
    gr = build_runtime_graph(store, query)
    oracle = all_matches(gr)
    enumerated = TopkEnumerator(gr).top_k(len(oracle) + 50)
    assert len(enumerated) == len(oracle)
    keys = {tuple(sorted(m.assignment.items())) for m in enumerated}
    assert len(keys) == len(enumerated)


@given(seed=st.integers(0, 10**9))
@settings(max_examples=40, deadline=None)
def test_scores_non_decreasing(seed):
    _, store, query = random_setup(seed)
    gr = build_runtime_graph(store, query)
    scores = [m.score for m in TopkEnumerator(gr).top_k(100)]
    assert scores == sorted(scores)


@given(seed=st.integers(0, 10**9))
@settings(max_examples=30, deadline=None)
def test_rounds_equal_emitted(seed):
    """Laziness: exactly one Lawler round per emitted match."""
    rng, store, query = random_setup(seed)
    gr = build_runtime_graph(store, query)
    k = rng.randint(1, 12)
    engine = TopkEnumerator(gr)
    got = engine.top_k(k)
    assert engine.stats.rounds == len(got)


@given(seed=st.integers(0, 10**9))
@settings(max_examples=30, deadline=None)
def test_en_loads_monotone_in_k(seed):
    """Loading more results never touches fewer edges."""
    _, store, query = random_setup(seed)
    first = TopkEN(store, query)
    first.top_k(1)
    loads_k1 = first.stats.edges_loaded
    second = TopkEN(store, query)
    second.top_k(10)
    assert second.stats.edges_loaded >= loads_k1


@given(seed=st.integers(0, 10**9))
@settings(max_examples=30, deadline=None)
def test_every_match_satisfies_connectivity(seed):
    """Every emitted assignment maps query edges to reachable pairs."""
    _, store, query = random_setup(seed)
    matches = TopkEN(store, query).top_k(15)
    for match in matches:
        for u_p, u, _ in query.edges():
            dist = store.distance(
                match.assignment[u_p], match.assignment[u]
            )
            assert dist is not None and dist >= 0


class TestTieHandling:
    def test_massive_ties_enumerate_fully(self):
        # 6 identical branches: 6 matches, all score 1.
        labels = {"r": "a"}
        edges = []
        for i in range(6):
            labels[f"b{i}"] = "b"
            edges.append(("r", f"b{i}"))
        g = graph_from_edges(labels, edges)
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        store = ClosureStore.build(g)
        gr = build_runtime_graph(store, q)
        matches = TopkEnumerator(gr).top_k(100)
        assert [m.score for m in matches] == [1] * 6
        assert len({m.assignment[1] for m in matches}) == 6

    def test_ties_consistent_across_engines(self):
        labels = {"r": "a"}
        edges = []
        for i in range(5):
            labels[f"b{i}"] = "b"
            edges.append(("r", f"b{i}", 2))
        g = graph_from_edges(labels, edges)
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        store = ClosureStore.build(g)
        gr = build_runtime_graph(store, q)
        a = {m.assignment[1] for m in TopkEnumerator(gr).top_k(3)}
        b = {m.assignment[1] for m in TopkEN(store, q).top_k(3)}
        # Both pick 3 of the 5 tied nodes; sets may differ but sizes match
        # and scores are identical.
        assert len(a) == len(b) == 3


class TestDeepChains:
    def test_long_path_query(self):
        # Path graph a0 -> a1 -> ... -> a9, path query of length 10.
        labels = {f"n{i}": f"l{i}" for i in range(10)}
        edges = [(f"n{i}", f"n{i+1}") for i in range(9)]
        g = graph_from_edges(labels, edges)
        q = QueryTree(
            {i: f"l{i}" for i in range(10)}, [(i, i + 1) for i in range(9)]
        )
        store = ClosureStore.build(g)
        for engine in (TopkEnumerator(build_runtime_graph(store, q)),
                       TopkEN(store, q)):
            matches = engine.top_k(5)
            assert len(matches) == 1
            assert matches[0].score == 9

    def test_wide_star_query(self):
        labels = {"hub": "h"}
        edges = []
        for i in range(30):
            labels[f"s{i}"] = f"spoke{i % 3}"
            edges.append(("hub", f"s{i}", 1 + i % 4))
        g = graph_from_edges(labels, edges)
        q = QueryTree(
            {0: "h", 1: "spoke0", 2: "spoke1", 3: "spoke2"},
            [(0, 1), (0, 2), (0, 3)],
        )
        store = ClosureStore.build(g)
        gr = build_runtime_graph(store, q)
        oracle = all_matches(gr)
        got = TopkEnumerator(gr).top_k(50)
        assert [m.score for m in got] == [m.score for m in oracle[:50]]
