"""Tests for match refs, materialization, and stats containers."""

import pytest

from repro.core.matches import EnumerationStats, Match, MatchRef, materialize
from repro.exceptions import MatchingError
from repro.graph.query import QueryTree


def toy_query():
    return QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])


def slot_min_table(table):
    def slot_min(u, v, u_child):
        return table.get((u, v, u_child))

    return slot_min


class TestMatch:
    def test_mapped_nodes_sorted(self):
        m = Match({0: "x", 1: "a"}, 2.0)
        assert m.mapped_nodes() == ("a", "x")

    def test_iteration(self):
        m = Match({0: "x"}, 1.0)
        assert list(m) == [(0, "x")]

    def test_frozen(self):
        m = Match({0: "x"}, 1.0)
        with pytest.raises(AttributeError):
            m.score = 5


class TestMaterialize:
    def make_table(self):
        # Best-child pointers: (a0 -> b0 -> c0), sibling b1 -> c1.
        return {
            (0, "a0", 1): (1.0, (1, "b0")),
            (1, "b0", 2): (1.0, (2, "c0")),
            (1, "b1", 2): (2.0, (2, "c1")),
        }

    def test_seed_materialization(self):
        q = toy_query()
        ref = MatchRef(2.0, None, 0, "a0", 1, slot=None)
        got = materialize(q, ref, slot_min_table(self.make_table()))
        assert got == {0: "a0", 1: "b0", 2: "c0"}
        assert ref.assignment == got

    def test_replacement_materialization(self):
        q = toy_query()
        seed = MatchRef(2.0, None, 0, "a0", 1, slot=None)
        materialize(q, seed, slot_min_table(self.make_table()))
        # Replace position 1 with b1: subtree below re-expands to c1.
        child = MatchRef(4.0, seed, 1, "b1", 2, slot=None)
        got = materialize(q, child, slot_min_table(self.make_table()))
        assert got == {0: "a0", 1: "b1", 2: "c1"}

    def test_cached(self):
        q = toy_query()
        ref = MatchRef(2.0, None, 0, "a0", 1, slot=None)
        table = self.make_table()
        first = materialize(q, ref, slot_min_table(table))
        table.clear()  # must not be consulted again
        second = materialize(q, ref, slot_min_table(table))
        assert first is second

    def test_unmaterialized_parent_rejected(self):
        q = toy_query()
        parent = MatchRef(2.0, None, 0, "a0", 1, slot=None)
        child = MatchRef(3.0, parent, 1, "b1", 2, slot=None)
        with pytest.raises(MatchingError, match="materialized first"):
            materialize(q, child, slot_min_table(self.make_table()))

    def test_missing_slot_rejected(self):
        q = toy_query()
        ref = MatchRef(2.0, None, 0, "a0", 1, slot=None)
        with pytest.raises(MatchingError, match="no viable child"):
            materialize(q, ref, slot_min_table({}))


class TestEnumerationStats:
    def test_defaults(self):
        stats = EnumerationStats()
        assert stats.rounds == 0
        assert stats.extra == {}

    def test_extra_is_per_instance(self):
        a = EnumerationStats()
        b = EnumerationStats()
        a.extra["x"] = 1
        assert b.extra == {}
