"""Tests for node-weighted scoring (the paper's footnote 2)."""

import random

import pytest

from repro.closure.store import ClosureStore
from repro.core.baseline_dp import DPBEnumerator
from repro.core.baseline_dpp import DPPEnumerator
from repro.core.brute_force import all_matches
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.core.api import TreeMatcher
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryTree
from repro.runtime.graph import assignment_score, build_runtime_graph


def weight_by_suffix(node) -> float:
    """Deterministic synthetic node weight derived from the node id."""
    return (hash(str(node)) % 5) * 0.5


class TestWeightedScores:
    def test_simple_shift(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        flat = TopkEnumerator(gr).top_k(4)
        weighted = TopkEnumerator(gr, node_weight=lambda v: 1.0).top_k(4)
        # Constant weight 1 shifts every score by n_T = 4.
        assert [m.score for m in weighted] == [m.score + 4 for m in flat]

    def test_weights_can_reorder(self):
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "b1": "b"},
            [("a0", "b0", 1), ("a0", "b1", 2)],
        )
        store = ClosureStore.build(g)
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        gr = build_runtime_graph(store, q)
        # b0 is nearer but heavily weighted: b1 must win.
        weights = {"b0": 5.0, "b1": 0.0, "a0": 0.0}
        matches = TopkEnumerator(gr, node_weight=weights.get).top_k(2)
        assert matches[0].assignment[1] == "b1"
        assert [m.score for m in matches] == [2, 6]

    def test_assignment_score_with_weights(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph)
        score = assignment_score(
            store,
            figure4_query,
            {"u1": "v1", "u2": "v2", "u3": "v5", "u4": "v7"},
            node_weight=lambda v: 0.25,
        )
        assert score == 3 + 4 * 0.25


class TestAllEnginesAgree:
    @pytest.mark.parametrize("seed", range(20))
    def test_weighted_oracle_agreement(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 13), rng.randint(8, 30), num_labels=4, seed=seed
        )
        store = ClosureStore.build(g, block_size=rng.choice([2, 16]))
        labels = sorted(g.labels())
        rng.shuffle(labels)
        size = min(len(labels), rng.randint(2, 4))
        q = QueryTree(
            {i: labels[i] for i in range(size)},
            [(rng.randrange(i), i) for i in range(1, size)],
        )
        gr = build_runtime_graph(store, q)
        oracle = [
            m.score for m in all_matches(gr, node_weight=weight_by_suffix)
        ]
        k = rng.choice([1, 5, 20])
        engines = [
            TopkEnumerator(gr, node_weight=weight_by_suffix),
            TopkEN(store, q, node_weight=weight_by_suffix),
            DPBEnumerator(gr, node_weight=weight_by_suffix),
            DPPEnumerator(store, q, node_weight=weight_by_suffix),
        ]
        for engine in engines:
            got = [m.score for m in engine.top_k(k)]
            assert got == pytest.approx(oracle[:k]), type(engine).__name__

    def test_facade_plumbs_weights(self, figure4_graph, figure4_query):
        tm = TreeMatcher(figure4_graph, node_weight=lambda v: 1.0)
        for alg in ("dp-b", "dp-p", "topk", "topk-en", "brute-force"):
            matches = tm.top_k(figure4_query, 1, algorithm=alg)
            assert matches[0].score == 3 + 4, alg

    def test_single_node_query_weighted(self, figure4_graph):
        tm = TreeMatcher(
            figure4_graph, node_weight=lambda v: 2.0 if v == "v5" else 0.0
        )
        q = QueryTree({0: "c"}, [])
        matches = tm.top_k(q, 4)
        # v5 is pushed to the back by its weight.
        assert matches[-1].assignment[0] == "v5"
        assert matches[-1].score == 2.0
