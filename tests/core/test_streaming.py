"""Streaming-semantics tests: partial consumption, interleaving, iterators."""

import itertools

import pytest

from repro.closure.store import ClosureStore
from repro.core.baseline_dp import DPBEnumerator
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.runtime.graph import build_runtime_graph


@pytest.fixture
def engines(figure1_graph, figure1_query):
    store = ClosureStore.build(figure1_graph)
    gr = build_runtime_graph(store, figure1_query)
    return [
        TopkEnumerator(gr),
        TopkEN(store, figure1_query),
        DPBEnumerator(gr),
    ]

EXPECTED = [2.0, 2.0, 3.0, 3.0, 3.0, 3.0]


class TestStreamProtocol:
    def test_iter_protocol(self, engines):
        for engine in engines:
            scores = [m.score for m in itertools.islice(engine, 3)]
            assert scores == EXPECTED[:3], type(engine).__name__

    def test_partial_then_full(self, engines):
        for engine in engines:
            stream = engine.stream()
            first = next(stream)
            assert first.score == EXPECTED[0]
            rest = [m.score for m in stream]
            assert [first.score] + rest == EXPECTED, type(engine).__name__

    def test_two_streams_interleaved(self, engines):
        for engine in engines:
            s1 = engine.stream()
            s2 = engine.stream()
            a = next(s1)
            b = next(s2)
            assert a.score == b.score == EXPECTED[0]
            # Advancing one stream must not skip results on the other.
            next(s1)
            assert next(s2).score == EXPECTED[1], type(engine).__name__

    def test_stream_after_topk(self, engines):
        for engine in engines:
            engine.top_k(4)
            assert [m.score for m in engine.stream()] == EXPECTED

    def test_topk_after_stream(self, engines):
        for engine in engines:
            list(itertools.islice(engine.stream(), 2))
            assert [m.score for m in engine.top_k(6)] == EXPECTED

    def test_exhausted_stream_stops(self, engines):
        for engine in engines:
            scores = [m.score for m in engine.stream()]
            assert scores == EXPECTED
            assert list(engine.stream()) == engine.results
