"""Tests for Algorithm 1 (Topk) — including the paper's worked examples."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.brute_force import all_matches
from repro.core.topk import TopkEnumerator, topk_matches
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph


def make_gr(graph, query, block_size=4):
    store = ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)
    return build_runtime_graph(store, query)


class TestFigure4Examples:
    """Examples 3.3 / 3.4: the L/H construction and the first four matches."""

    def test_top1_is_example_3_3(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        engine = TopkEnumerator(gr)
        assert engine.top1_score() == 3
        top1 = engine.top_k(1)[0]
        assert top1.assignment == {"u1": "v1", "u2": "v2", "u3": "v5", "u4": "v7"}

    def test_enumeration_follows_example_3_4(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        matches = topk_matches(gr, 10)
        # Example 3.4: v5 -> v6 -> v3 -> v4 at the c-position.
        assert [m.score for m in matches] == [3, 4, 5, 6]
        assert [m.assignment["u3"] for m in matches] == ["v5", "v6", "v3", "v4"]

    def test_slot_contents_match_figure_4c(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        engine = TopkEnumerator(gr)
        slot = engine._slots[("u1", "v1", "u3")]
        assert slot.min() == (2, ("u3", "v5"))  # H_{v1,c} = {(v5, 2)}
        ranks = [slot.ith(r) for r in (2, 3, 4)]
        assert [(k, n[1]) for k, n in ranks] == [(3, "v6"), (4, "v3"), (5, "v4")]


class TestFigure1Example:
    """The introduction's patent-citation example (reconstruction)."""

    def test_two_best_matches_score_two(self, figure1_graph, figure1_query):
        gr = make_gr(figure1_graph, figure1_query)
        matches = topk_matches(gr, 10)
        assert [m.score for m in matches] == [2, 2, 3, 3, 3, 3]
        best_roots = {m.assignment["uC"] for m in matches[:2]}
        assert best_roots == {"v1", "v3"}


class TestEdgeCases:
    def test_no_match(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        q = QueryTree({0: "b", 1: "a"}, [(0, 1)])
        gr = make_gr(g, q)
        engine = TopkEnumerator(gr)
        assert engine.top1_score() is None
        assert engine.top_k(5) == []

    def test_k_zero(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        assert topk_matches(gr, 0) == []

    def test_k_negative(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        with pytest.raises(ValueError):
            topk_matches(gr, -1)

    def test_k_larger_than_match_count(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        assert len(topk_matches(gr, 1000)) == 4

    def test_single_node_query(self, figure4_graph):
        q = QueryTree({0: "c"}, [])
        gr = make_gr(figure4_graph, q)
        matches = topk_matches(gr, 10)
        assert len(matches) == 4
        assert all(m.score == 0 for m in matches)

    def test_weighted_edges(self):
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "b1": "b"},
            [("a0", "b0", 2.5), ("a0", "b1", 1.25)],
        )
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        matches = topk_matches(make_gr(g, q), 5)
        assert [m.score for m in matches] == [1.25, 2.5]

    def test_stream_is_replayable(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        engine = TopkEnumerator(gr)
        first_two = engine.top_k(2)
        replay = list(engine.stream())
        assert [m.score for m in replay[:2]] == [m.score for m in first_two]
        assert len(replay) == 4

    def test_top_k_monotone_calls(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        engine = TopkEnumerator(gr)
        two = engine.top_k(2)
        four = engine.top_k(4)
        assert [m.score for m in four[:2]] == [m.score for m in two]


class TestInvariants:
    def test_scores_non_decreasing(self, figure1_graph, figure1_query):
        gr = make_gr(figure1_graph, figure1_query)
        matches = topk_matches(gr, 100)
        scores = [m.score for m in matches]
        assert scores == sorted(scores)

    def test_no_duplicate_assignments(self, figure1_graph, figure1_query):
        gr = make_gr(figure1_graph, figure1_query)
        matches = topk_matches(gr, 100)
        seen = {tuple(sorted(m.assignment.items())) for m in matches}
        assert len(seen) == len(matches)

    def test_matches_complete_against_oracle(self, figure1_graph, figure1_query):
        gr = make_gr(figure1_graph, figure1_query)
        assert len(topk_matches(gr, 1000)) == len(all_matches(gr))

    def test_stats_populated(self, figure4_graph, figure4_query):
        gr = make_gr(figure4_graph, figure4_query)
        engine = TopkEnumerator(gr)
        engine.top_k(4)
        assert engine.stats.rounds == 4
        assert engine.stats.case1_requests == 4
        assert engine.stats.case2_requests > 0
        assert engine.stats.init_seconds >= 0
