"""Tests for Algorithms 2 & 3 (ComputeFirst / Topk-EN) — lazy loading."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.topk_en import BOUNDS, LazyTopkEngine, TopkEN, topk_en_matches
from repro.graph.digraph import graph_from_edges
from repro.graph.query import EdgeType, QueryTree


def make_store(graph, block_size=2):
    return ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)


class TestExample42:
    """Example 4.2: ComputeFirst finds the top-1 after expanding only v5."""

    def test_top1_score(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = TopkEN(store, figure4_query)
        assert engine.compute_first() == 3

    def test_only_v5_expands(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = TopkEN(store, figure4_query)
        engine.compute_first()
        # The paper's Figure 5: only (v1, v5) is loaded beyond the E/D
        # initialization — one expansion, one L-group edge.
        assert engine.stats.expansions == 1
        assert engine.stats.edges_loaded == 1

    def test_full_enumeration_matches_example_3_4(
        self, figure4_graph, figure4_query
    ):
        store = make_store(figure4_graph)
        matches = topk_en_matches(store, figure4_query, 10)
        assert [m.score for m in matches] == [3, 4, 5, 6]
        assert [m.assignment["u3"] for m in matches] == ["v5", "v6", "v3", "v4"]


class TestLazyBehaviour:
    def test_enumeration_loads_more_than_top1(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = TopkEN(store, figure4_query)
        engine.compute_first()
        top1_loads = engine.stats.edges_loaded
        engine.top_k(4)
        assert engine.stats.edges_loaded >= top1_loads

    def test_dormant_leaves_wake_on_demand(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        engine = TopkEN(store, figure4_query)
        engine.compute_first()
        assert engine._dormant  # leaves still waiting
        engine.top_k(2)
        # The second match replaces the c-node: only the c slot was
        # constrained, so the d-leaf stays dormant only if its slot was
        # never constrained; with 4 matches requested it eventually wakes.
        engine.top_k(4)
        assert "u2" not in engine._dormant or "u4" not in engine._dormant

    def test_bound_validation(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        with pytest.raises(ValueError):
            LazyTopkEngine(store, figure4_query, bound="bogus")
        assert BOUNDS == ("structural", "loose")

    def test_loose_bound_same_results(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        tight = TopkEN(store, figure4_query).top_k(4)
        loose = LazyTopkEngine(store, figure4_query, bound="loose").top_k(4)
        assert [m.score for m in tight] == [m.score for m in loose]

    def test_loose_bound_never_loads_less(self, figure1_graph, figure1_query):
        store = make_store(figure1_graph)
        tight = TopkEN(store, figure1_query)
        tight.top_k(6)
        loose = LazyTopkEngine(store, figure1_query, bound="loose")
        loose.top_k(6)
        assert loose.stats.edges_loaded >= tight.stats.edges_loaded


class TestEdgeCases:
    def test_no_match(self):
        g = graph_from_edges({"x": "a", "y": "b"}, [("x", "y")])
        q = QueryTree({0: "b", 1: "a"}, [(0, 1)])
        engine = TopkEN(make_store(g), q)
        assert engine.compute_first() is None
        assert engine.top_k(3) == []

    def test_single_node_query(self, figure4_graph):
        q = QueryTree({0: "c"}, [])
        matches = topk_en_matches(make_store(figure4_graph), q, 10)
        assert len(matches) == 4
        assert all(m.score == 0 for m in matches)

    def test_k_negative(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        with pytest.raises(ValueError):
            engine.top_k(-2)

    def test_child_edge_leaf(self, figure4_graph):
        # '/' edge to the leaf: direct a->d edges do not exist.
        q = QueryTree({0: "a", 1: "d"}, [(0, 1, EdgeType.CHILD)])
        engine = TopkEN(make_store(figure4_graph), q)
        assert engine.top_k(3) == []

    def test_child_edge_realizable(self, figure4_graph):
        q = QueryTree(
            {0: "c", 1: "d"}, [(0, 1, EdgeType.CHILD)]
        )
        matches = topk_en_matches(make_store(figure4_graph), q, 10)
        assert [m.score for m in matches] == [1, 2, 3, 4]

    def test_tiny_blocks(self, figure1_graph, figure1_query):
        store = make_store(figure1_graph, block_size=1)
        matches = topk_en_matches(store, figure1_query, 10)
        assert [m.score for m in matches] == [2, 2, 3, 3, 3, 3]

    def test_stream_replay(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        a = [m.score for m in engine.top_k(2)]
        b = [m.score for m in engine.stream()]
        assert b[:2] == a
        assert len(b) == 4


class TestGuardSafety:
    def test_weighted_graph(self):
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "b1": "b", "c0": "c", "c1": "c"},
            [
                ("a0", "b0", 3),
                ("a0", "b1", 1),
                ("b0", "c0", 1),
                ("b1", "c1", 5),
                ("b1", "c0", 7),
            ],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        matches = topk_en_matches(make_store(g), q, 10)
        # All matches: (a0,b0,c0)=4, (a0,b1,c1)=6, (a0,b1,c0)=8.
        assert [m.score for m in matches] == [4, 6, 8]

    def test_many_roots(self):
        labels = {"r%d" % i: "a" for i in range(6)}
        labels["leaf"] = "b"
        edges = [("r%d" % i, "leaf", i + 1) for i in range(6)]
        g = graph_from_edges(labels, edges)
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        matches = topk_en_matches(make_store(g), q, 6)
        assert [m.score for m in matches] == [1, 2, 3, 4, 5, 6]
