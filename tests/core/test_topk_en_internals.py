"""White-box tests of the lazy engine's internal machinery.

The score-level behavior of Topk-EN is covered by the oracle-agreement
suites; these tests pin down the *mechanism*: guard values, node states,
dormant-leaf lifecycle, pending parks, cursor progress, and bound
arithmetic.
"""

from repro.closure.store import ClosureStore
from repro.core.topk_en import LazyTopkEngine, TopkEN
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree


def make_store(graph, block_size=2):
    return ClosureStore.build(graph, block_size=block_size)


class TestStructuralBound:
    def test_values_follow_subtree_sizes(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        # n_T = 4: L(root)=0, L(u2)=4-1-1=2, L(u3)=4-1-2=1, L(u4)=2.
        assert engine._structural_bound("u1") == 0
        assert engine._structural_bound("u2") == 2
        assert engine._structural_bound("u3") == 1
        assert engine._structural_bound("u4") == 2

    def test_loose_bound_is_zero(self, figure4_graph, figure4_query):
        engine = LazyTopkEngine(
            make_store(figure4_graph), figure4_query, bound="loose"
        )
        assert all(
            engine._structural_bound(u) == 0 for u in figure4_query.nodes()
        )

    def test_bound_scales_with_min_weight(self):
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "c0": "c"},
            [("a0", "b0", 3), ("b0", "c0", 4)],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        engine = TopkEN(make_store(g), q)
        # min edge weight 3; L(leaf) = (3 - 1 - 1) * 3 = 3.
        assert engine._min_weight == 3
        assert engine._structural_bound(2) == 3


class TestNodeStates:
    def test_states_after_top1(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.compute_first()
        v5 = engine._states[("u3", "v5")]
        assert v5.popped and v5.active
        root = engine._states[("u1", "v1")]
        assert root.popped  # the root pop *is* the top-1 signal
        assert root.bs == 3

    def test_bs_values_match_example(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.compute_first()
        for v, expected in (("v3", 3), ("v4", 4), ("v5", 1), ("v6", 2)):
            state = engine._states[("u3", v)]
            assert state.bs == expected, v

    def test_unmatchable_copies_not_queued(self):
        # b1 has no incoming 'a' edge: it must never activate.
        g = graph_from_edges(
            {"a0": "a", "b0": "b", "b1": "b", "c0": "c", "c1": "c"},
            [("a0", "b0"), ("b0", "c0"), ("b1", "c1")],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        engine = TopkEN(make_store(g), q)
        engine.top_k(5)
        state = engine._states.get((1, "b1"))
        assert state is not None
        assert not state.matchable
        assert not state.popped


class TestGuard:
    def test_guard_infinite_when_drained(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.top_k(100)  # exhaust everything
        assert engine._guard() == float("inf")

    def test_guard_finite_mid_run(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.compute_first()
        assert engine._guard() < float("inf")


class TestDormantLeafLifecycle:
    def test_leaves_dormant_after_init(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        assert set(engine._dormant) == {"u2", "u4"}
        assert len(engine._dormant["u4"]) == 1  # only v7 carries label d

    def test_wake_is_idempotent(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        assert engine._wake_dormant_leaves("u4")
        assert not engine._wake_dormant_leaves("u4")

    def test_full_enumeration_wakes_constrained_leaves(
        self, figure4_graph, figure4_query
    ):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.top_k(4)
        # Case-2 divisions constrain both leaf positions in round 1.
        assert "u4" not in engine._dormant
        assert "u2" not in engine._dormant

    def test_pending_parks_recorded(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.top_k(4)
        assert engine.stats.pending_parks >= 1


class TestExpansionCursors:
    def test_cursor_progress_and_exhaustion(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph, block_size=1), figure4_query)
        engine.top_k(4)
        v5 = engine._states[("u3", "v5")]
        assert v5.cursor is not None
        assert v5.exhausted
        assert v5.e_floor == float("inf")

    def test_edges_loaded_counts_scanned_entries(
        self, figure4_graph, figure4_query
    ):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        engine.top_k(4)
        # Full enumeration eventually scans each c-node's single incoming
        # edge plus the leaves' groups; never more than the closure holds.
        closure_pairs = engine.store.closure.num_pairs
        assert 1 <= engine.stats.edges_loaded <= closure_pairs


class TestPendingPool:
    def test_pending_drains_by_exhaustion(self, figure4_graph, figure4_query):
        engine = TopkEN(make_store(figure4_graph), figure4_query)
        matches = engine.top_k(100)
        assert len(matches) == 4
        # After exhausting the space, nothing may linger pending.
        assert engine._pending == []

    def test_root_slot_collects_all_roots(self):
        labels = {"r%d" % i: "a" for i in range(3)}
        labels["leaf"] = "b"
        g = graph_from_edges(
            labels, [("r%d" % i, "leaf", i + 1) for i in range(3)]
        )
        q = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        engine = TopkEN(make_store(g), q)
        engine.top_k(3)
        assert len(engine._root_slot) == 3
