"""CompactionPolicy thresholds and the background Compactor thread."""

import threading
import time

import pytest

from repro.delta import CompactionPolicy, Compactor
from repro.exceptions import DeltaError


class TestPolicy:
    def test_nothing_pending_is_never_due(self):
        policy = CompactionPolicy(max_records=1, max_ratio=0.0001)
        assert not policy.due(0, 100)

    def test_absolute_record_threshold(self):
        policy = CompactionPolicy(max_records=10, max_ratio=0)
        assert not policy.due(9, 10_000)
        assert policy.due(10, 10_000)

    def test_overlay_base_ratio_threshold(self):
        policy = CompactionPolicy(max_records=0, max_ratio=0.5)
        assert not policy.due(49, 100)
        assert policy.due(50, 100)
        # An empty base never divides by zero.
        assert policy.due(1, 0)

    def test_disabled_thresholds(self):
        policy = CompactionPolicy(max_records=0, max_ratio=0)
        assert not policy.due(10**9, 1)


class TestCompactor:
    def test_kick_wakes_the_thread_immediately(self):
        ticked = threading.Event()
        compactor = Compactor(ticked.set, interval=3600)
        try:
            compactor.kick()
            assert ticked.wait(5), "kick must beat the hour-long interval"
            assert compactor.alive
        finally:
            compactor.stop()

    def test_idle_interval_ticks(self):
        calls = []
        compactor = Compactor(lambda: calls.append(1), interval=0.01)
        try:
            deadline = time.monotonic() + 5
            while len(calls) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(calls) >= 3
        finally:
            compactor.stop()

    def test_tick_errors_never_kill_the_thread(self):
        def explode():
            raise RuntimeError("fold failed")

        compactor = Compactor(explode, interval=3600)
        try:
            compactor.kick()
            deadline = time.monotonic() + 5
            while compactor.errors == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert compactor.errors >= 1
            assert compactor.alive, "a failing fold must not stop ticking"
            stats = compactor.stats()
            assert stats["last_error"] == "RuntimeError: fold failed"
            assert stats["ticks"] >= 1
        finally:
            compactor.stop()

    def test_stop_joins_and_is_idempotent(self):
        compactor = Compactor(lambda: None, interval=0.01)
        compactor.stop()
        assert not compactor.alive
        compactor.stop()

    def test_interval_must_be_positive(self):
        with pytest.raises(DeltaError, match="positive"):
            Compactor(lambda: None, interval=0)


class TestStopTimeout:
    def test_timed_out_stop_is_reported_and_recoverable(self):
        started = threading.Event()
        release = threading.Event()

        def stall():
            started.set()
            release.wait(30)

        compactor = Compactor(stall, interval=3600)
        try:
            compactor.kick()
            assert started.wait(5), "tick never started"
            assert compactor.stop(timeout=0.05) is False
            assert compactor.stop_timed_out
            assert compactor.stats()["stop_timed_out"] is True
        finally:
            release.set()
        # A later stop joins the now-unblocked thread and clears the flag.
        assert compactor.stop(timeout=5) is True
        assert not compactor.stop_timed_out
        assert compactor.stats()["stop_timed_out"] is False

    def test_clean_stop_reports_true(self):
        compactor = Compactor(lambda: None, interval=0.01)
        assert compactor.stop() is True
        assert compactor.stats()["stop_timed_out"] is False
