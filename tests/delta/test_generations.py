"""Generation families: numbered .ridx snapshots, manifest, swap protocol."""

import json

import pytest

from repro.delta import (
    GenerationStore,
    manifest_path_for,
    resolve_index_path,
    sniff_is_generation_manifest,
)
from repro.engine import MatchEngine
from repro.exceptions import DeltaError
from repro.graph.generators import citation_graph


@pytest.fixture
def family(tmp_path):
    graph = citation_graph(30, num_labels=4, seed=1)
    engine = MatchEngine(graph, backend="full")
    base = tmp_path / "index.ridx"
    engine.save_index(base, format="binary")
    return base, engine


class TestNaming:
    def test_manifest_path_pairs_with_base(self, tmp_path):
        assert manifest_path_for(tmp_path / "index.ridx") == (
            tmp_path / "index.generations.json"
        )

    def test_generation_path_numbering(self, family):
        base, _engine = family
        store = GenerationStore(base)
        assert store.generation_path(0) == base
        assert store.generation_path(3).name == "index.gen-0003.ridx"


class TestStore:
    def test_fresh_family_is_generation_zero(self, family):
        base, _engine = family
        store = GenerationStore(base)
        assert store.load_manifest() is None
        assert store.current_generation == 0
        assert store.current_path() == base
        assert store.generations() == []
        assert resolve_index_path(base) == base

    def test_write_generation_advances_the_family(self, family):
        base, engine = family
        store = GenerationStore(base)
        generation, path = store.write_generation(
            engine, epoch=4, records_folded=7, wall_seconds=0.5
        )
        assert generation == 1
        assert path.name == "index.gen-0001.ridx"
        assert path.exists()
        assert store.current_generation == 1
        assert store.current_path() == path
        (entry,) = store.generations()
        assert entry["epoch"] == 4
        assert entry["records_folded"] == 7
        # The new generation is a complete, loadable index.
        assert MatchEngine.load(path).graph.num_nodes == engine.graph.num_nodes
        # Both the base path and the manifest resolve to the current gen.
        assert resolve_index_path(base) == path
        assert resolve_index_path(store.manifest_path) == path

    def test_second_generation_stacks(self, family):
        base, engine = family
        store = GenerationStore(base)
        store.write_generation(engine, epoch=1, records_folded=1, wall_seconds=0)
        generation, path = store.write_generation(
            engine, epoch=2, records_folded=2, wall_seconds=0
        )
        assert generation == 2
        assert path.name == "index.gen-0002.ridx"
        assert len(store.generations()) == 2

    def test_store_accepts_the_manifest_path(self, family):
        base, engine = family
        GenerationStore(base).write_generation(
            engine, epoch=1, records_folded=1, wall_seconds=0
        )
        via_manifest = GenerationStore(manifest_path_for(base))
        assert via_manifest.base_path == base
        assert via_manifest.current_generation == 1

    def test_stale_wal_detection(self, family):
        """The crash window between manifest update and WAL truncate."""
        base, engine = family
        store = GenerationStore(base)
        assert not store.stale_wal(0)  # fresh family, nothing folded
        store.write_generation(engine, epoch=1, records_folded=1, wall_seconds=0)
        assert store.stale_wal(0), "gen-0 WAL records are folded into gen-1"
        assert not store.stale_wal(1)

    def test_corrupt_manifest_raises(self, family):
        base, _engine = family
        manifest_path_for(base).write_text("{broken", encoding="utf-8")
        with pytest.raises(DeltaError, match="unreadable"):
            GenerationStore(base).load_manifest()
        manifest_path_for(base).write_text(
            json.dumps({"kind": "other"}), encoding="utf-8"
        )
        with pytest.raises(DeltaError, match="not a generations manifest"):
            GenerationStore(base).load_manifest()

    def test_stats(self, family):
        base, engine = family
        store = GenerationStore(base)
        assert store.stats()["current"] == 0
        store.write_generation(engine, epoch=1, records_folded=3, wall_seconds=0)
        stats = store.stats()
        assert stats["current"] == 1
        assert stats["generations"] == 1


class TestSniffing:
    def test_sniffs_only_real_manifests(self, family, tmp_path):
        base, engine = family
        assert not sniff_is_generation_manifest(base)
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"kind": "else"}), encoding="utf-8")
        assert not sniff_is_generation_manifest(other)
        assert not sniff_is_generation_manifest(tmp_path / "missing.json")
        GenerationStore(base).write_generation(
            engine, epoch=1, records_folded=1, wall_seconds=0
        )
        assert sniff_is_generation_manifest(manifest_path_for(base))


class TestSwapDurability:
    def test_generation_swap_fsyncs_the_directory(self, family, monkeypatch):
        """Both the new .ridx file and the manifest rename must be
        followed by a parent-directory fsync, or a power loss can roll
        the family back to a generation that no longer exists."""
        base, engine = family
        synced = []
        monkeypatch.setattr(
            "repro.delta.generations.fsync_dir",
            lambda path: synced.append(path),
        )
        store = GenerationStore(base)
        store.write_generation(engine, epoch=1, records_folded=1, wall_seconds=0.0)
        assert synced.count(base.parent) >= 2  # generation file + manifest
