"""DeltaLog: ordered pending batches, write-ahead-first durability."""

import pytest

from repro.delta import DeltaLog, EdgeAdd, NodeAdd, WriteAheadLog, scan_wal
from repro.exceptions import DeltaError, WalError

BATCH_A = (NodeAdd("n", "L"), EdgeAdd("a", "n"))
BATCH_B = (EdgeAdd("n", "b", 2),)


class TestMemoryOnly:
    def test_append_orders_batches(self):
        log = DeltaLog()
        assert log.append(BATCH_A) == 1
        assert log.append(BATCH_B) == 2
        assert log.version == 2
        assert log.pending_batches == 2
        assert log.pending_records == 3
        assert log.records() == BATCH_A + BATCH_B

    def test_empty_batch_refused(self):
        with pytest.raises(DeltaError, match="at least one record"):
            DeltaLog().append(())

    def test_drain_takes_everything_once(self):
        log = DeltaLog()
        log.append(BATCH_A)
        log.append(BATCH_B)
        assert log.drain() == BATCH_A + BATCH_B
        assert log.pending_records == 0
        assert log.drain() == ()
        stats = log.stats()
        assert stats["folded_records"] == 3
        assert stats["folds"] == 1
        assert stats["version"] == 2
        assert stats["wal"] is None


class TestWalAttached:
    def test_append_is_write_ahead(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "d.wal")
        log = DeltaLog(wal=wal)
        log.append(BATCH_A)
        wal.close()
        assert scan_wal(tmp_path / "d.wal").records == BATCH_A

    def test_failed_wal_append_leaves_memory_untouched(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "d.wal")
        log = DeltaLog(wal=wal)
        with pytest.raises(WalError):
            log.append((EdgeAdd(1.5, "bad"),))  # unencodable id
        wal.close()
        with pytest.raises(WalError):
            log.append(BATCH_A)  # closed segment
        assert log.pending_records == 0
        assert log.version == 0

    def test_drain_does_not_truncate_the_wal(self, tmp_path):
        """Only compaction truncates: a fold changes nothing on disk."""
        with WriteAheadLog(tmp_path / "d.wal") as wal:
            log = DeltaLog(wal=wal)
            log.append(BATCH_A)
            size_before = wal.size_bytes()
            assert log.drain() == BATCH_A
            assert wal.size_bytes() == size_before
        assert scan_wal(tmp_path / "d.wal").records == BATCH_A

    def test_adopt_is_memory_only(self, tmp_path):
        """Boot-time recovery must not write records back to the WAL."""
        with WriteAheadLog(tmp_path / "d.wal") as wal:
            log = DeltaLog(wal=wal)
            assert log.adopt(BATCH_A) == 1
            assert log.adopt(()) == 1  # no-op, no version bump
            assert wal.size_bytes() == scan_wal(tmp_path / "d.wal").good_bytes
            assert scan_wal(tmp_path / "d.wal").records == ()
        assert log.records() == BATCH_A
