"""Delta records: WAL codec exactness and update-shape normalization."""

import json

import pytest

from repro.delta import (
    EdgeAdd,
    EdgeRemove,
    LabelChange,
    NodeAdd,
    apply_records,
    decode_record,
    encode_record,
    records_from_updates,
)
from repro.exceptions import GraphError, WalError
from repro.graph.digraph import LabeledDiGraph

ALL_RECORDS = (
    EdgeAdd("a", "b"),
    EdgeAdd("a", "c", 3),
    EdgeRemove("a", "b"),
    NodeAdd("n", "L"),
    LabelChange("n", "M"),
)


def small_graph():
    graph = LabeledDiGraph()
    for node, label in (("a", "A"), ("b", "B"), ("c", "C")):
        graph.add_node(node, label)
    graph.add_edge("a", "b")
    return graph


class TestCodec:
    @pytest.mark.parametrize("record", ALL_RECORDS, ids=repr)
    def test_round_trip(self, record):
        assert decode_record(encode_record(record)) == record

    def test_int_node_ids_survive_exactly(self):
        record = EdgeAdd(1, 2, 5)
        back = decode_record(encode_record(record))
        assert back.tail == 1 and isinstance(back.tail, int)

    def test_encoding_is_canonical(self):
        payload = encode_record(EdgeAdd("a", "b", 2))
        assert payload == json.dumps(
            json.loads(payload), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @pytest.mark.parametrize(
        "record",
        [
            EdgeAdd(("tu", "ple"), "b"),
            EdgeAdd("a", 1.5),
            NodeAdd("n", frozenset({"L"})),
            NodeAdd(True, "L"),  # bool is not an exact int
            LabelChange("n", None),
        ],
        ids=repr,
    )
    def test_inexact_ids_refuse_to_encode(self, record):
        with pytest.raises(WalError, match="cannot be written to a WAL"):
            encode_record(record)

    def test_bool_weight_refused(self):
        with pytest.raises(WalError, match="not a number"):
            encode_record(EdgeAdd("a", "b", True))

    @pytest.mark.parametrize(
        "payload",
        [b"not json", b"{}", b'{"op":"warp"}', b'{"op":"edge_add"}'],
    )
    def test_undecodable_payloads_raise(self, payload):
        with pytest.raises(WalError, match="undecodable"):
            decode_record(payload)


class TestApply:
    def test_apply_records_in_order(self):
        graph = small_graph()
        apply_records(
            graph,
            (
                NodeAdd("d", "D"),
                EdgeAdd("c", "d", 2),
                EdgeRemove("a", "b"),
                LabelChange("b", "B2"),
            ),
        )
        assert graph.has_edge("c", "d")
        assert not graph.has_edge("a", "b")
        assert graph.label("b") == "B2"

    def test_structural_errors_propagate(self):
        with pytest.raises(GraphError):
            apply_records(small_graph(), (EdgeRemove("b", "c"),))


class TestRecordsFromUpdates:
    def test_application_order(self):
        records = records_from_updates(
            edges_added=[("a", "b"), ("a", "c", 4)],
            edges_removed=[("x", "y")],
            nodes_added={"n": "L"},
            labels_changed={"m": "M"},
        )
        assert records == (
            NodeAdd("n", "L"),
            EdgeAdd("a", "b"),
            EdgeAdd("a", "c", 4),
            EdgeRemove("x", "y"),
            LabelChange("m", "M"),
        )

    def test_removed_edges_tolerate_weight(self):
        (record,) = records_from_updates(edges_removed=[("a", "b", 9)])
        assert record == EdgeRemove("a", "b")

    def test_malformed_added_edge_raises(self):
        with pytest.raises(ValueError, match="tail, head"):
            records_from_updates(edges_added=[("a",)])

    def test_empty_updates_are_empty(self):
        assert records_from_updates() == ()
