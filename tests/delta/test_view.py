"""Folding overlays: fold / fold_graph / diff_graphs / DeltaView."""

import pytest

from repro.delta import (
    DeltaView,
    EdgeAdd,
    EdgeRemove,
    LabelChange,
    NodeAdd,
    apply_records,
    diff_graphs,
    fold,
    fold_graph,
)
from repro.engine import MatchEngine
from repro.exceptions import DeltaError
from repro.graph.generators import citation_graph

RECORDS = (
    NodeAdd(999, "V1"),
    EdgeAdd(0, 999, 2),
    EdgeRemove(0, 1),
)


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@pytest.fixture(scope="module")
def base():
    graph = citation_graph(40, num_labels=5, seed=2)
    if not graph.has_edge(0, 1):
        graph.add_edge(0, 1)
    return MatchEngine(graph, backend="full")


def patched_engine(base, records):
    graph = base.graph.copy()
    apply_records(graph, records)
    return MatchEngine(graph, base.config)


class TestFold:
    def test_fold_matches_fresh_rebuild(self, base):
        result = fold(base, RECORDS)
        fresh = patched_engine(base, RECORDS)
        for query in ("V0//V1", "V0[V1]//V2"):
            assert exact(result.engine.top_k(query, 8)) == exact(
                fresh.top_k(query, 8)
            )
        assert result.incremental
        assert result.affected_labels is not None
        assert result.nodes_added == 1
        assert result.edges_added == 1
        assert result.edges_removed == 1

    def test_base_engine_is_never_mutated(self, base):
        nodes_before = base.graph.num_nodes
        fold(base, RECORDS)
        assert base.graph.num_nodes == nodes_before
        assert base.graph.has_edge(0, 1)

    def test_label_change_falls_back_to_rebuild(self, base):
        result = fold(base, (LabelChange(1, "V4"),))
        assert not result.incremental
        assert result.affected_labels is None
        fresh = patched_engine(base, (LabelChange(1, "V4"),))
        assert exact(result.engine.top_k("V0//V2", 6)) == exact(
            fresh.top_k("V0//V2", 6)
        )

    def test_new_node_label_lands_in_affected_set(self, base):
        result = fold(base, (NodeAdd(888, "V3"),))
        assert "V3" in result.affected_labels

    def test_patched_graph_is_adopted(self, base):
        graph = base.graph.copy()
        apply_records(graph, RECORDS)
        result = fold(base, RECORDS, patched_graph=graph)
        assert result.engine.graph is graph


class TestFoldGraph:
    def test_empty_diff_returns_the_base_engine(self, base):
        result = fold_graph(base, base.graph.copy())
        assert result.engine is base
        assert result.rows_recomputed == 0
        assert result.affected_labels == frozenset()

    def test_additive_diff_folds_incrementally(self, base):
        target = base.graph.copy()
        apply_records(target, RECORDS)
        result = fold_graph(base, target)
        assert result.incremental
        fresh = MatchEngine(target, base.config)
        assert exact(result.engine.top_k("V0//V1", 8)) == exact(
            fresh.top_k("V0//V1", 8)
        )

    def test_node_departure_forces_rebuild(self, base):
        target = base.graph.copy()
        victim = next(iter(target.nodes()))
        target.remove_node(victim)
        result = fold_graph(base, target)
        assert not result.incremental
        assert result.engine.graph.num_nodes == base.graph.num_nodes - 1


class TestDiffGraphs:
    def test_diff_vocabulary(self, base):
        old = base.graph
        new = old.copy()
        apply_records(new, RECORDS)
        new.relabel_node(2, "V4")
        diff = diff_graphs(old, new)
        assert (0, 999, 2) in diff.edges_added
        assert (0, 1) in diff.edges_removed
        assert diff.nodes_added == {999: "V1"}
        assert diff.labels_changed == {2: "V4"}
        assert not diff.nodes_removed
        assert not diff.empty
        assert diff_graphs(old, old.copy()).empty

    def test_weight_change_surfaces_as_edge_add(self, base):
        old = base.graph
        tail, head, weight = next(iter(old.edges()))
        new = old.copy()
        new.remove_edge(tail, head)
        new.add_edge(tail, head, weight + 7)
        diff = diff_graphs(old, new)
        assert (tail, head, weight + 7) in diff.edges_added
        assert (tail, head) not in diff.edges_removed


class TestDeltaView:
    def test_lazy_fold_once(self, base):
        view = DeltaView(base, records=RECORDS)
        assert not view.folded
        engine = view.engine()
        assert view.folded
        assert view.engine() is engine  # cached, not re-folded
        fresh = patched_engine(base, RECORDS)
        assert exact(engine.top_k("V0//V1", 6)) == exact(
            fresh.top_k("V0//V1", 6)
        )

    def test_graph_target_variant(self, base):
        target = base.graph.copy()
        apply_records(target, RECORDS)
        view = DeltaView(base, graph=target)
        assert view.result().engine.graph is target

    def test_exactly_one_input_required(self, base):
        with pytest.raises(DeltaError, match="exactly one"):
            DeltaView(base)
        with pytest.raises(DeltaError, match="exactly one"):
            DeltaView(base, records=RECORDS, graph=base.graph)
