"""WAL segments: append durability, torn-tail recovery, atomic rewrite."""

import struct

import pytest

from repro.delta import EdgeAdd, NodeAdd, WriteAheadLog, scan_wal
from repro.delta.wal import HEADER_SIZE, WAL_MAGIC, fsync_dir
from repro.exceptions import WalError

RECORDS = (NodeAdd("n", "L"), EdgeAdd("a", "b", 2), EdgeAdd("n", "a"))


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "index.wal"


class TestAppendAndScan:
    def test_fresh_segment_has_header_only(self, wal_path):
        with WriteAheadLog(wal_path, generation=3) as wal:
            assert wal.size_bytes() == HEADER_SIZE
            assert wal.generation == 3
        assert wal_path.read_bytes()[:4] == WAL_MAGIC
        scan = scan_wal(wal_path)
        assert scan.records == () and scan.generation == 3
        assert not scan.truncated_tail

    def test_append_then_scan_round_trips(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wrote = wal.append(RECORDS)
            assert wrote == wal.size_bytes() - HEADER_SIZE
            assert wal.appended_records == len(RECORDS)
        assert scan_wal(wal_path).records == RECORDS

    def test_reopen_recovers_records(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS)
        with WriteAheadLog(wal_path) as wal:
            assert wal.recovered_records == RECORDS
            assert not wal.recovered_truncated
            wal.append((EdgeAdd("x", "y"),))
        assert scan_wal(wal_path).records == RECORDS + (EdgeAdd("x", "y"),)

    def test_closed_segment_refuses_appends(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(RECORDS)
        wal.close()  # idempotent

    def test_unencodable_batch_leaves_segment_untouched(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            with pytest.raises(WalError):
                wal.append((EdgeAdd("ok", "ok2"), EdgeAdd(1.5, "bad")))
            assert wal.size_bytes() == HEADER_SIZE
        assert scan_wal(wal_path).records == ()

    def test_stats_shape(self, wal_path):
        with WriteAheadLog(wal_path, generation=2, fsync=True) as wal:
            wal.append(RECORDS)
            stats = wal.stats()
        assert stats["generation"] == 2
        assert stats["appended_records"] == 3
        assert stats["recovered_records"] == 0
        assert stats["fsync"] is True
        assert stats["size_bytes"] > HEADER_SIZE


class TestTornTailRecovery:
    def test_garbage_tail_is_truncated_on_reopen(self, wal_path):
        """Kill-mid-append: half a frame lands, reopen drops exactly it."""
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS)
            good = wal.size_bytes()
        with open(wal_path, "ab") as handle:
            handle.write(b"\x99" * 11)  # a frame header cut short
        with WriteAheadLog(wal_path) as wal:
            assert wal.recovered_records == RECORDS
            assert wal.recovered_truncated
            assert wal.recovered_dropped_bytes == 11
            assert wal.size_bytes() == good
            wal.append((EdgeAdd("post", "crash"),))
        scan = scan_wal(wal_path)
        assert scan.records == RECORDS + (EdgeAdd("post", "crash"),)
        assert not scan.truncated_tail

    def test_corrupt_crc_drops_frame_and_everything_after(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS[:1])
            first = wal.size_bytes()
            wal.append(RECORDS[1:])
        data = bytearray(wal_path.read_bytes())
        data[first + 8 + 2] ^= 0xFF  # flip a payload byte under its CRC
        wal_path.write_bytes(bytes(data))
        scan = scan_wal(wal_path)
        assert scan.records == RECORDS[:1]
        assert scan.truncated_tail
        assert scan.good_bytes == first

    def test_torn_header_restarts_the_segment(self, wal_path):
        wal_path.write_bytes(WAL_MAGIC + b"\x01")  # crash during creation
        with WriteAheadLog(wal_path, generation=7) as wal:
            assert wal.recovered_records == ()
            assert wal.recovered_truncated
            assert wal.generation == 7
            wal.append(RECORDS[:1])
        assert scan_wal(wal_path).records == RECORDS[:1]

    def test_bad_magic_raises(self, wal_path):
        wal_path.write_bytes(b"NOPE" + bytes(HEADER_SIZE - 4))
        with pytest.raises(WalError, match="bad magic"):
            scan_wal(wal_path)
        with pytest.raises(WalError, match="bad magic"):
            WriteAheadLog(wal_path)

    def test_future_version_raises(self, wal_path):
        header = struct.pack("<4sB3sQ", WAL_MAGIC, 9, b"\x00" * 3, 0)
        wal_path.write_bytes(header)
        with pytest.raises(WalError, match="version 9"):
            scan_wal(wal_path)

    def test_valid_checksum_garbage_payload_raises(self, wal_path):
        """Damage before the tail is corruption, not a torn append."""
        import zlib

        payload = b'{"op":"warp-drive"}'
        frame = struct.pack("<II", len(payload), zlib.crc32(payload))
        with WriteAheadLog(wal_path) as wal:
            pass
        with open(wal_path, "ab") as handle:
            handle.write(frame + payload)
        with pytest.raises(WalError, match="undecodable"):
            scan_wal(wal_path)


class TestRewrite:
    def test_rewrite_truncates_and_restamps(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS)
            wal.rewrite((), generation=5)
            assert wal.generation == 5
            assert wal.size_bytes() == HEADER_SIZE
        scan = scan_wal(wal_path)
        assert scan.records == () and scan.generation == 5
        assert not wal_path.with_name("index.wal.tmp").exists()

    def test_rewrite_can_carry_records_forward(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS)
            wal.rewrite(RECORDS[2:], generation=1)
            wal.append((EdgeAdd("p", "q"),))
        scan = scan_wal(wal_path)
        assert scan.records == (RECORDS[2], EdgeAdd("p", "q"))
        assert scan.generation == 1


class TestRewriteDurability:
    """The swap itself must be durable and its failures typed."""

    def test_rewrite_fsyncs_the_parent_directory(self, wal_path, monkeypatch):
        synced = []
        monkeypatch.setattr(
            "repro.delta.wal.fsync_dir", lambda path: synced.append(path)
        )
        with WriteAheadLog(wal_path) as wal:
            wal.append(RECORDS)
            wal.rewrite((), generation=1)
        assert wal_path.parent in synced

    def test_fsync_dir_tolerates_missing_directory(self, tmp_path):
        fsync_dir(tmp_path / "never-created")  # best-effort: no raise

    def test_failed_swap_leaves_the_segment_usable(self, wal_path, monkeypatch):
        wal = WriteAheadLog(wal_path)
        wal.append(RECORDS)

        def refuse(src, dst):
            raise OSError("no space left on device")

        with monkeypatch.context() as patched:
            patched.setattr("os.replace", refuse)
            with pytest.raises(OSError, match="no space"):
                wal.rewrite((), generation=5)
        # The old segment won the race: same generation, still appendable.
        assert wal.generation == 0
        wal.append((EdgeAdd("x", "y"),))
        wal.close()
        scan = scan_wal(wal_path)
        assert scan.records == RECORDS + (EdgeAdd("x", "y"),)
        assert scan.generation == 0

    def test_unreopenable_swap_failure_stays_typed(self, wal_path, monkeypatch):
        """When even the recovery reopen fails, later appends must raise
        WalError("closed"), never a raw ValueError on a closed file."""
        wal = WriteAheadLog(wal_path)
        wal.append(RECORDS)

        def refuse(src, dst):
            raise OSError("replace failed")

        with monkeypatch.context() as patched:
            patched.setattr("os.replace", refuse)
            wal_path.unlink()  # the reopen has nothing to come back to
            with pytest.raises(OSError):
                wal.rewrite((), generation=5)
        with pytest.raises(WalError, match="closed"):
            wal.append(RECORDS)
        wal.close()  # still idempotent after the failure
