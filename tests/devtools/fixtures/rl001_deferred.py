"""Seeded RL001 defers violation: a sanctioned seam imported eagerly.

Linted as ``repro.io.formats``: the fixture DAG lets ``repro.io``
import ``repro.engine`` *only from function scope* (``defers``).
"""

import repro.engine  # seeded violation (line 7): top-level, defers-only


def boot_engine():
    from repro.engine import MatchEngine  # allowed: deferred seam

    return MatchEngine


def also_fine():
    import repro.engine as engine  # allowed: deferred seam

    return engine
