"""Seeded RL001 violation: a storage module reaching up into the engine.

Linted as ``repro.storage.blocks`` against the fixture DAG, where
``repro.storage`` depends only on ``repro.exceptions``.
"""

from repro.engine import MatchEngine  # seeded violation (line 7)
from repro.exceptions import StorageError  # allowed: declared dep


def lazy_is_still_checked():
    # Function scope does not excuse an undeclared dependency — only
    # entries listed in `defers` may be imported lazily.
    from repro.engine import config  # seeded violation (line 14)

    return config


def allowed_dep():
    raise StorageError(str(MatchEngine))
