"""Seeded RL002 violation: bare builtin raises in a persistence layer.

Linted as ``repro.storage.blocks`` — the taxonomy mandates
``IndexFormatError`` / ``StorageError`` there.
"""


def bad_value(size):
    if size < 0:
        raise ValueError(f"negative size {size}")  # seeded violation (line 10)
    return size


def bad_key(mapping, key):
    if key not in mapping:
        raise KeyError(key)  # seeded violation (line 16)
    return mapping[key]


def fine(reason):
    # Types outside the banned builtins are not this rule's business.
    raise RuntimeError(reason)


def re_raise_is_fine():
    try:
        return fine("x")
    except RuntimeError:
        raise
