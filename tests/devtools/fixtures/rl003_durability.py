"""Seeded RL003 violation: a rename that is never made durable.

Linted as ``repro.storage.swap``.  ``unsafe_swap`` renames without
fsyncing the directory; ``safe_swap`` follows the swap protocol.
"""

import os


def fsync_dir(path):
    """Stand-in for repro.delta.wal.fsync_dir (the rule matches by name)."""


def unsafe_swap(tmp_path, final_path):
    os.replace(tmp_path, final_path)  # seeded violation (line 15)


def safe_swap(tmp_path, final_path):
    os.replace(tmp_path, final_path)
    fsync_dir(os.path.dirname(final_path))


def fsync_too_early(tmp_path, final_path):
    fsync_dir(os.path.dirname(final_path))
    os.rename(tmp_path, final_path)  # seeded violation (line 25)
