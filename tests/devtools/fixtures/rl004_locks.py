"""Seeded RL004 violation: a guarded attribute rebound without its lock.

Linted as ``repro.storage.cache``.  ``Counter._total`` is assigned
under ``self._lock`` in ``add()``, so the bare rebind in ``reset()`` is
flagged; ``__init__`` construction is exempt by design.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # exempt: construction precedes sharing

    def add(self, amount):
        with self._lock:
            self._total += amount

    def reset(self):
        self._total = 0  # seeded violation (line 21)

    def guarded_reset(self):
        with self._lock:
            self._total = 0  # fine: lock held
