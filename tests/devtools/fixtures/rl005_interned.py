"""Seeded RL005 violation: interned-id vocabulary in a public signature.

Linted as ``repro.closure.api`` — above the interned-ID boundary in the
fixture DAG (``repro.closure`` can see ``repro.compact``).
"""


def successors(store, iid):  # seeded violation (line 8)
    return store.rows(iid)


def distance(store, source_iid, target_iid):  # seeded violation (line 12)
    return store.distance(source_iid, target_iid)


def _decode(store, iid):
    # Private helpers legitimately traffic in interned ids.
    return store.decode(iid)


class _Planner:
    def lookup(self, node_iid):
        # Enclosed in a private class: exempt.
        return node_iid


def neighbours(store, node):
    # Public, but speaks NodeId — fine.
    return store.neighbours(node)
