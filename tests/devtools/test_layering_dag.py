"""The real layer DAG, applied to the real tree — one parameterized test.

This replaces the per-package ast-walk layering tests
(``tests/compact/test_layering.py``, ``tests/shard/test_layering.py``,
and the kernel copy in ``tests/kernel/test_program.py``): every entry of
``config/layers.toml`` gets its own test case, driven by the same DAG
the ``repro lint`` CI gate enforces, so a new package is covered the
moment it takes a DAG position — with no new test to remember.
"""

from pathlib import Path

import pytest

from repro.devtools.lint import run_lint
from repro.devtools.lint.core import (
    iter_module_files,
    load_layers,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
LAYERS = load_layers(REPO_ROOT / "config" / "layers.toml")


@pytest.fixture(scope="module")
def layering_result():
    return run_lint(REPO_ROOT, rules=["RL001"])


@pytest.mark.parametrize("entry", sorted(LAYERS.entries), ids=str)
def test_entry_respects_the_dag(layering_result, entry):
    offending = [
        f"{f.path}:{f.line}: {f.message}"
        for f in layering_result.findings
        if LAYERS.entry_for(_module_of(f.path)) is LAYERS.entries[entry]
    ]
    assert not offending, (
        f"{entry} violates config/layers.toml:\n" + "\n".join(offending)
    )


def test_no_layering_findings_at_all(layering_result):
    assert layering_result.clean, [
        f"{f.path}:{f.line}: {f.message}" for f in layering_result.findings
    ]


def test_every_module_is_covered_by_exactly_one_entry():
    for path in iter_module_files([REPO_ROOT / "src" / "repro"]):
        module = module_name_for(path)
        assert module is not None, path
        assert LAYERS.entry_for(module) is not None, (
            f"{module} ({path}) has no entry in config/layers.toml; "
            "give the new package a DAG position"
        )


def test_dag_documents_known_positions():
    """Spot-check load-bearing facts the DAG encodes (regression pins)."""
    allowed_of = LAYERS.allowed
    # The serving layer may reach the write path, never the reverse.
    assert "repro.delta" in allowed_of("repro.service")
    assert "repro.service" not in allowed_of("repro.delta")
    # Kernel stays below the engine.
    assert "repro.engine" not in allowed_of("repro.kernel")
    # The deprecated facade sits above the engine, unlike the rest of core.
    assert "repro.engine" in allowed_of("repro.core.api")
    assert "repro.engine" not in allowed_of("repro.core")
    # devtools is importable from the write path and serving layers
    # (make_lock) but depends on nothing above the exceptions/utils base.
    assert "repro.devtools" in allowed_of("repro.delta")
    assert allowed_of("repro.devtools") <= {
        "repro.devtools", "repro.exceptions", "repro.utils",
    }


def _module_of(rel_path: str) -> str:
    return module_name_for(Path(rel_path)) or ""
