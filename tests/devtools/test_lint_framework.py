"""The reprolint framework itself: suppressions, baseline, reporters,
config validation, and the TOML fallback parser.

The JSON report shape asserted here is the documented CI artifact
(``repro lint --format json``) — changing it is a breaking change.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    LintConfigError,
    lint_sources,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)
from repro.devtools.lint.core import (
    _parse_toml_subset,
    load_layers,
    select_rules,
)

FIXTURES = Path(__file__).parent / "fixtures"

RAISE_SOURCE = (
    "def check(size):\n"
    "    if size < 0:\n"
    "        raise ValueError('negative')\n"
)


@pytest.fixture(scope="module")
def layers():
    return load_layers(FIXTURES / "layers.toml")


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self, layers):
        source = RAISE_SOURCE.replace(
            "raise ValueError('negative')",
            "raise ValueError('negative')  # reprolint: disable=RL002",
        )
        result = lint_sources([("repro.storage.blocks", source)], layers)
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["RL002"]

    def test_comment_line_covers_the_next_line(self, layers):
        source = (
            "def check(size):\n"
            "    if size < 0:\n"
            "        # reprolint: disable=RL002\n"
            "        raise ValueError('negative')\n"
        )
        result = lint_sources([("repro.storage.blocks", source)], layers)
        assert result.clean
        assert len(result.suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self, layers):
        source = RAISE_SOURCE.replace(
            "raise ValueError('negative')",
            "raise ValueError('negative')  # reprolint: disable=RL001",
        )
        result = lint_sources([("repro.storage.blocks", source)], layers)
        assert [f.rule for f in result.findings] == ["RL002"]
        assert not result.suppressed

    def test_disable_all(self, layers):
        source = RAISE_SOURCE.replace(
            "raise ValueError('negative')",
            "raise ValueError('negative')  # reprolint: disable=all",
        )
        result = lint_sources([("repro.storage.blocks", source)], layers)
        assert result.clean and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# Rule selection / configuration errors
# ----------------------------------------------------------------------
class TestConfig:
    def test_unknown_rule_is_a_usage_error(self):
        with pytest.raises(LintConfigError, match="RL999"):
            select_rules(["RL999"])

    def test_rule_ids_are_case_insensitive(self):
        (rule,) = select_rules(["rl002"])
        assert rule.rule_id == "RL002"

    def test_cyclic_dag_is_refused(self, tmp_path):
        (tmp_path / "layers.toml").write_text(
            '[[package]]\nname = "repro.a"\ndeps = ["repro.b"]\n\n'
            '[[package]]\nname = "repro.b"\ndeps = ["repro.a"]\n'
        )
        with pytest.raises(LintConfigError, match="cycle"):
            load_layers(tmp_path / "layers.toml")

    def test_undeclared_dep_is_refused(self, tmp_path):
        (tmp_path / "layers.toml").write_text(
            '[[package]]\nname = "repro.a"\ndeps = ["repro.ghost"]\n'
        )
        with pytest.raises(LintConfigError, match="undeclared"):
            load_layers(tmp_path / "layers.toml")

    def test_toml_subset_parser_matches_tomllib(self):
        # The 3.10 fallback must agree with the real parser on the
        # exact dialect layers.toml uses.
        import tomllib

        text = (FIXTURES / "layers.toml").read_text(encoding="utf-8")
        assert _parse_toml_subset(text) == tomllib.loads(text)

    def test_syntax_error_becomes_a_finding(self, layers):
        result = lint_sources([("repro.storage.blocks", "def broken(:\n")], layers)
        assert [f.rule for f in result.findings] == ["RL000"]


# ----------------------------------------------------------------------
# Baseline round-trip (on a miniature on-disk repo)
# ----------------------------------------------------------------------
@pytest.fixture()
def mini_repo(tmp_path):
    (tmp_path / "config").mkdir()
    (tmp_path / "config" / "layers.toml").write_text(
        (FIXTURES / "layers.toml").read_text(encoding="utf-8")
    )
    package = tmp_path / "src" / "repro" / "storage"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "blocks.py").write_text(RAISE_SOURCE)
    return tmp_path


class TestBaseline:
    def test_round_trip_grandfathers_then_goes_stale(self, mini_repo):
        first = run_lint(mini_repo)
        assert [f.rule for f in first.findings] == ["RL002"]

        baseline_path = mini_repo / "lint-baseline.json"
        assert write_baseline(baseline_path, first.findings) == 1
        entries = load_baseline(baseline_path)

        second = run_lint(mini_repo, baseline=entries)
        assert second.clean
        assert [f.rule for f in second.baselined] == ["RL002"]
        assert not second.stale_baseline

        # Line moves do not invalidate the entry (matching ignores lines).
        blocks = mini_repo / "src" / "repro" / "storage" / "blocks.py"
        blocks.write_text("# a new leading comment\n" + RAISE_SOURCE)
        third = run_lint(mini_repo, baseline=entries)
        assert third.clean and len(third.baselined) == 1

        # Fixing the violation makes the entry stale — reported, so the
        # baseline file burns down instead of rotting.
        blocks.write_text("def check(size):\n    return size\n")
        fourth = run_lint(mini_repo, baseline=entries)
        assert fourth.clean
        assert len(fourth.stale_baseline) == 1
        assert fourth.stale_baseline[0]["rule"] == "RL002"

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"kind": "something-else", "findings": []}')
        with pytest.raises(LintConfigError, match="reprolint-baseline"):
            load_baseline(bad)
        bad.write_text("not json")
        with pytest.raises(LintConfigError, match="not valid JSON"):
            load_baseline(bad)

    def test_missing_lint_target_is_a_usage_error(self, mini_repo):
        with pytest.raises(LintConfigError, match="no such path"):
            run_lint(mini_repo, [mini_repo / "src" / "ghost"])


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_json_schema(self, layers):
        result = lint_sources([("repro.storage.blocks", RAISE_SOURCE)], layers)
        document = json.loads(render_json(result))
        assert document["kind"] == "reprolint-report"
        assert document["version"] == 1
        assert document["rules"] == ["RL001", "RL002", "RL003", "RL004", "RL005"]
        (finding,) = document["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col",
            "message", "suppressed", "baselined",
        }
        assert finding["rule"] == "RL002"
        assert finding["path"] == "repro/storage/blocks.py"
        assert finding["line"] == 3
        assert finding["suppressed"] is False
        assert set(document["summary"]) == {
            "active", "error", "warning", "suppressed",
            "baselined", "stale_baseline", "modules",
        }
        assert document["summary"]["active"] == 1
        assert document["summary"]["error"] == 1

    def test_text_report_lines(self, layers):
        result = lint_sources([("repro.storage.blocks", RAISE_SOURCE)], layers)
        text = render_text(result)
        first, summary = text.splitlines()
        assert first.startswith("repro/storage/blocks.py:3:")
        assert "RL002" in first and "[error]" in first
        assert summary.endswith("1 errors, 0 warnings")

    def test_suppressed_findings_are_flagged_in_json(self, layers):
        source = RAISE_SOURCE.replace(
            "raise ValueError('negative')",
            "raise ValueError('negative')  # reprolint: disable=RL002",
        )
        result = lint_sources([("repro.storage.blocks", source)], layers)
        document = json.loads(render_json(result))
        (finding,) = document["findings"]
        assert finding["suppressed"] is True
        assert document["summary"]["active"] == 0
