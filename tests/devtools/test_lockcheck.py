"""The runtime lock-order sanitizer: inversion detection and wiring.

The decisive test constructs a genuine order inversion (``a`` before
``b`` in one place, ``b`` before ``a`` in another) and asserts the
second schedule raises :class:`LockOrderError` immediately — no actual
deadlock or thread interleaving required.
"""

import threading

import pytest

from repro.devtools.lockcheck import (
    CheckedLock,
    LockOrderError,
    enabled,
    held_locks,
    make_lock,
    order_edges,
    reset,
)


@pytest.fixture(autouse=True)
def _clean_graph():
    reset()
    yield
    reset()


class TestMakeLock:
    def test_disabled_returns_a_plain_lock(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        assert not enabled()
        lock = make_lock("x")
        assert not isinstance(lock, CheckedLock)
        with lock:
            pass

    def test_enabled_returns_a_checked_lock(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        assert enabled()
        lock = make_lock("x")
        assert isinstance(lock, CheckedLock)
        assert lock.name == "x"

    def test_decision_is_taken_at_creation_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        checked = make_lock("x")
        monkeypatch.delenv("REPRO_LOCKCHECK")
        assert isinstance(checked, CheckedLock)  # keeps what it was built as
        assert not isinstance(make_lock("x"), CheckedLock)


class TestOrderGraph:
    def test_nested_acquisition_records_an_edge(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        with a:
            assert held_locks() == ("lock.a",)
            with b:
                assert held_locks() == ("lock.a", "lock.b")
        assert held_locks() == ()
        assert order_edges() == {"lock.a": ("lock.b",)}

    def test_inversion_raises(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError, match="inversion"):
            with b:
                with a:
                    pass  # pragma: no cover - never reached

    def test_inversion_message_names_both_locks(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        with a, b:
            pass
        with pytest.raises(LockOrderError, match="'lock.a'.*'lock.b'"):
            with b, a:
                pass  # pragma: no cover - never reached

    def test_transitive_inversion_raises(self):
        a, b, c = CheckedLock("a"), CheckedLock("b"), CheckedLock("c")
        with a, b:
            pass
        with b, c:
            pass
        # a -> b -> c is on record; c -> a closes the cycle two hops out.
        with pytest.raises(LockOrderError):
            with c, a:
                pass  # pragma: no cover - never reached

    def test_consistent_order_never_raises(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_same_name_reentry_records_no_edge(self):
        # Two *instances* sharing a name (every _ShardGroup.lock, say):
        # holding one while acquiring the other is not an ordering fact.
        first, second = CheckedLock("group"), CheckedLock("group")
        with first:
            with second:
                pass
        assert order_edges() == {}

    def test_release_out_of_acquisition_order(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        a.acquire()
        b.acquire()
        a.release()
        assert held_locks() == ("lock.b",)
        b.release()
        assert held_locks() == ()

    def test_non_blocking_acquire_protocol(self):
        a = CheckedLock("lock.a")
        assert a.acquire(blocking=False)
        assert a.locked()
        a.release()
        assert not a.locked()

    def test_graph_is_shared_across_threads(self):
        """The inversion is caught even when the two schedules run on
        different threads — the order graph is process-global."""
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        errors: list[Exception] = []

        def first():
            with a:
                with b:
                    pass

        def second():
            try:
                with b:
                    with a:
                        pass  # pragma: no cover - never reached
            except LockOrderError as exc:
                errors.append(exc)

        one = threading.Thread(target=first)
        one.start()
        one.join()
        two = threading.Thread(target=second)
        two.start()
        two.join()
        assert len(errors) == 1

    def test_many_threads_with_a_consistent_order(self):
        a, b = CheckedLock("lock.a"), CheckedLock("lock.b")
        failures: list[Exception] = []

        def worker():
            try:
                for _ in range(50):
                    with a:
                        with b:
                            pass
            except LockOrderError as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert order_edges() == {"lock.a": ("lock.b",)}


class TestServiceWiring:
    def test_service_locks_are_checked_under_the_flag(self, monkeypatch):
        """A MatchService built under REPRO_LOCKCHECK=1 runs the real
        update/query/compact paths on CheckedLocks — the integration the
        stress suite (tests/service/test_concurrency.py) exercises at
        full thread count."""
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        from repro.graph.digraph import graph_from_edges
        from repro.service import MatchService

        graph = graph_from_edges(
            {"a1": "A", "a2": "A", "b1": "B", "b2": "B", "c1": "C"},
            [("a1", "b1"), ("b1", "c1"), ("a2", "b2")],
        )
        with MatchService(graph, backend="full", max_workers=2) as service:
            assert isinstance(service._update_lock, CheckedLock)
            assert isinstance(service._stats_lock, CheckedLock)
            before = service.request("A//B", k=4).matches
            service.apply_updates(edges_added=[("b2", "c1")])
            after = service.request("A//B", k=4).matches
            assert len(after) == len(before)
        # The service's documented internal order was recorded, not flagged.
        edges = order_edges()
        assert "service.stats" in edges.get("service.update", ())
