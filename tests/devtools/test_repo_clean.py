"""Meta-gate: ``repro lint`` exits 0 on the repository at HEAD.

Every rule runs over the real tree; deliberate exceptions live as inline
``# reprolint: disable=RLnnn`` suppressions next to a justifying comment
(never in a baseline file), so a clean exit means the contracts hold
everywhere else.
"""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repro_lint_is_clean_at_head(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 errors, 0 warnings" in out


def test_repro_lint_json_report_at_head(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["active"] == 0
    assert document["rules"] == ["RL001", "RL002", "RL003", "RL004", "RL005"]
    # Every suppressed finding in the tree is deliberate and justified;
    # keep the count pinned so new suppressions are a conscious diff.
    assert document["summary"]["suppressed"] == 2
