"""Each reprolint rule catches its seeded fixture violation — and only it.

The fixture files under ``fixtures/`` carry ``# seeded violation`` markers
on the exact lines each rule must flag; the clean constructs in the same
files double as negative controls (a finding on an unmarked line fails
the golden comparison).
"""

from pathlib import Path

import pytest

from repro.devtools.lint import lint_sources
from repro.devtools.lint.core import load_layers

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def layers():
    return load_layers(FIXTURES / "layers.toml")


#: (fixture file, module name it is linted as, rule, golden finding lines).
GOLDEN = [
    ("rl001_layering.py", "repro.storage.blocks", "RL001", [7, 14]),
    ("rl001_deferred.py", "repro.io.formats", "RL001", [7]),
    ("rl002_taxonomy.py", "repro.storage.blocks", "RL002", [10, 16]),
    ("rl003_durability.py", "repro.storage.swap", "RL003", [15, 25]),
    ("rl004_locks.py", "repro.storage.cache", "RL004", [21]),
    # `distance()` leaks two interned params -> two findings on line 12.
    ("rl005_interned.py", "repro.closure.api", "RL005", [8, 12, 12]),
]


@pytest.mark.parametrize(
    "filename, module, rule, lines", GOLDEN, ids=[c[0] for c in GOLDEN]
)
def test_rule_catches_seeded_violations(layers, filename, module, rule, lines):
    text = (FIXTURES / filename).read_text(encoding="utf-8")
    result = lint_sources([(module, text)], layers, rules=[rule])
    assert [(f.rule, f.line) for f in result.findings] == [
        (rule, line) for line in lines
    ]
    # The marker comments and the rule agree on every flagged line.
    marked = {
        lineno
        for lineno, source_line in enumerate(text.splitlines(), start=1)
        if "seeded violation" in source_line
    }
    assert set(lines) == marked


@pytest.mark.parametrize(
    "filename, module, rule, lines", GOLDEN, ids=[c[0] for c in GOLDEN]
)
def test_other_rules_stay_quiet_on_the_fixture(layers, filename, module, rule, lines):
    """Running *all* rules over a fixture adds no unrelated findings."""
    text = (FIXTURES / filename).read_text(encoding="utf-8")
    result = lint_sources([(module, text)], layers)
    assert {f.rule for f in result.findings} == {rule}


def test_rl001_uncovered_module_is_a_finding(layers):
    result = lint_sources(
        [("repro.orphan.thing", "import repro.exceptions\n")],
        layers,
        rules=["RL001"],
    )
    assert len(result.findings) == 1
    assert "not covered" in result.findings[0].message


def test_rl001_own_subtree_is_always_allowed(layers):
    result = lint_sources(
        [("repro.storage.blocks", "from repro.storage import iostats\n")],
        layers,
        rules=["RL001"],
    )
    assert result.clean


def test_rl002_only_applies_to_covered_packages(layers):
    source = "def f():\n    raise ValueError('fine up here')\n"
    result = lint_sources(
        [("repro.closure.store", source)], layers, rules=["RL002"]
    )
    assert result.clean


def test_rl003_string_replace_is_not_a_rename(layers):
    source = "def f(name):\n    return name.replace('a', 'b')\n"
    result = lint_sources(
        [("repro.storage.swap", source)], layers, rules=["RL003"]
    )
    assert result.clean


def test_rl003_from_import_alias_is_tracked(layers):
    source = (
        "from os import replace\n"
        "def f(a, b):\n"
        "    replace(a, b)\n"
    )
    result = lint_sources(
        [("repro.storage.swap", source)], layers, rules=["RL003"]
    )
    assert [f.line for f in result.findings] == [3]


def test_rl004_unguarded_class_is_exempt(layers):
    source = (
        "class Plain:\n"
        "    def __init__(self):\n"
        "        self.total = 0\n"
        "    def bump(self):\n"
        "        self.total += 1\n"
    )
    result = lint_sources(
        [("repro.storage.cache", source)], layers, rules=["RL004"]
    )
    assert result.clean


def test_rl005_return_annotation_is_checked(layers):
    source = (
        "def row_for(node) -> 'int32':\n"
        "    return 0\n"
    )
    result = lint_sources(
        [("repro.closure.api", source)], layers, rules=["RL005"]
    )
    assert len(result.findings) == 1
    assert "returns int32" in result.findings[0].message


def test_rl005_layers_below_the_boundary_are_exempt(layers):
    source = "def successors(iid):\n    return iid\n"
    for module in ("repro.compact.csr", "repro.storage.blocks"):
        result = lint_sources([(module, source)], layers, rules=["RL005"])
        assert result.clean, module
