"""Cross-backend agreement: every backend answers every algorithm identically."""

import random

import pytest

from repro.engine import BACKENDS, MatchEngine
from repro.engine.config import ALGORITHMS
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryTree


def _random_case(seed: int):
    """A seeded random graph plus a realizable-ish random query tree."""
    rng = random.Random(seed)
    g = erdos_renyi_graph(
        rng.randint(8, 16), rng.randint(12, 40), num_labels=4, seed=seed
    )
    labels = sorted(g.labels())
    rng.shuffle(labels)
    size = min(len(labels), rng.randint(2, 4))
    q = QueryTree(
        {i: labels[i] for i in range(size)},
        [(rng.randrange(i), i) for i in range(1, size)],
    )
    return g, q


def _engine(graph, backend: str, query) -> MatchEngine:
    if backend == "constrained":
        return MatchEngine(graph, backend=backend, workload=(query,))
    return MatchEngine(graph, backend=backend)


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_backends_all_algorithms_same_scores(self, seed):
        g, q = _random_case(seed)
        k = random.Random(seed * 31).choice([1, 3, 10])
        reference: dict[str, list[float]] = {}
        for backend in BACKENDS:
            engine = _engine(g, backend, q)
            for algorithm in ALGORITHMS:
                scores = [m.score for m in engine.top_k(q, k, algorithm=algorithm)]
                if algorithm in reference:
                    assert scores == reference[algorithm], (backend, algorithm)
                else:
                    reference[algorithm] = scores
        # All algorithms agree with each other too.
        distinct = {tuple(s) for s in reference.values()}
        assert len(distinct) == 1, reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_figure4_counts(self, figure4_graph, figure4_query, backend):
        engine = _engine(figure4_graph, backend, figure4_query)
        scores = [m.score for m in engine.top_k(figure4_query, 4)]
        assert scores == [3, 4, 5, 6]


class TestBackendSurface:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_describe_and_statistics(self, figure4_graph, figure4_query, backend):
        engine = _engine(figure4_graph, backend, figure4_query)
        assert isinstance(engine.backend.describe(), str)
        stats = engine.statistics()
        assert stats["backend"] == backend
        assert stats["build_seconds"] >= 0.0

    def test_constrained_requires_workload(self, figure4_graph):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError, match="workload"):
            MatchEngine(figure4_graph, backend="constrained")

    def test_constrained_rejects_out_of_workload_queries(self, figure4_graph):
        """A constrained index must refuse queries it cannot answer
        correctly instead of silently returning partial results."""
        from repro.exceptions import EngineError

        declared = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        other = QueryTree({0: "c", 1: "d"}, [(0, 1)])  # needs 'c' sources
        engine = MatchEngine(figure4_graph, backend="constrained",
                             workload=(declared,))
        assert [m.score for m in engine.top_k(declared, 1)] == [1]
        with pytest.raises(EngineError, match="outside the declared workload"):
            engine.top_k(other, 1)

    def test_constrained_covers_label_subsets(self, figure4_graph):
        """Queries whose non-leaf labels are a subset of the declared
        tails are answerable and answered identically to full."""
        declared = QueryTree(
            {0: "a", 1: "c", 2: "d"}, [(0, 1), (1, 2)]
        )
        subset = QueryTree({0: "c", 1: "d"}, [(0, 1)])
        engine = MatchEngine(figure4_graph, backend="constrained",
                             workload=(declared,))
        full = MatchEngine(figure4_graph, backend="full")
        assert [m.score for m in engine.top_k(subset, 4)] == [
            m.score for m in full.top_k(subset, 4)
        ]

    def test_unknown_backend_rejected(self, figure4_graph):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError, match="unknown backend"):
            MatchEngine(figure4_graph, backend="magnetic-tape")

    def test_batch_reuses_index(self, figure4_graph):
        q1 = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        q2 = QueryTree({0: "c", 1: "d"}, [(0, 1)])
        engine = MatchEngine(figure4_graph, backend="full")
        results = engine.batch([q1, q2], k=4)
        assert [m.score for m in results[0]] == [1]
        assert [m.score for m in results[1]] == [1, 2, 3, 4]


class TestRefreshHooks:
    """The snapshot/refresh contract of the ReachabilityBackend protocol."""

    def test_advertised_refresh_support(self, figure4_graph, figure4_query):
        expectations = {
            "full": True, "ondemand": False, "hybrid": False,
            "pll": False, "constrained": False,
        }
        for backend, expected in expectations.items():
            engine = _engine(figure4_graph, backend, figure4_query)
            assert engine.backend.supports_incremental_refresh is expected, backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refreshed_backend_answers_updated_graph(
        self, figure4_graph, figure4_query, backend
    ):
        engine = _engine(figure4_graph, backend, figure4_query)
        updated = figure4_graph.copy()
        updated.remove_edge("v1", "v5")
        refresh = engine.backend.refreshed(
            updated, engine.config, edges_removed=(("v1", "v5"),)
        )
        assert refresh.backend.name == backend
        assert refresh.incremental is (backend == "full")
        fresh = _engine(updated, backend, figure4_query)
        rebuilt = MatchEngine(updated, engine.config, _backend=refresh.backend)
        assert [m.score for m in rebuilt.top_k(figure4_query, 4)] == [
            m.score for m in fresh.top_k(figure4_query, 4)
        ]

    def test_full_refresh_recomputes_only_affected_rows(self, figure4_graph):
        engine = MatchEngine(figure4_graph, backend="full")
        updated = figure4_graph.copy()
        updated.add_edge("v2", "v7", 9)
        refresh = engine.backend.refreshed(
            updated, engine.config, edges_added=(("v2", "v7", 9),)
        )
        # Only v2's row and rows reaching v2 (just v1) are recomputed —
        # and v1's recomputed row comes out unchanged (it already reached
        # v7 cheaper), so only b (source) and d (new head) are affected.
        assert refresh.rows_recomputed == 2
        assert refresh.affected_labels == {"b", "d"}

    def test_rebuild_refresh_reports_no_signal(self, figure4_graph):
        engine = MatchEngine(figure4_graph, backend="pll")
        updated = figure4_graph.copy()
        updated.add_edge("v2", "v7", 9)
        refresh = engine.backend.refreshed(
            updated, engine.config, edges_added=(("v2", "v7", 9),)
        )
        assert refresh.affected_labels is None
        assert refresh.rows_recomputed == updated.num_nodes
