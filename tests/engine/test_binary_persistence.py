"""Binary (.ridx) persistence: mmap-loaded engines ≡ in-memory engines.

The acceptance property of the binary format: for every backend, saving
an engine and reopening it through the mmap path returns *byte-identical*
top-k results — same scores, same assignments, same node-id types.  The
random graphs from :mod:`tests.strategies` use ``int`` node ids, so the
property also pins the id-type preservation the JSON format cannot offer
(and now refuses instead of silently breaking ``Match`` equality).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matches import Match
from repro.engine import MatchEngine
from repro.exceptions import IndexFormatError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.service import MatchService
from tests.strategies import FUZZ_EXAMPLES, graph_and_query

BACKENDS = ("full", "ondemand", "hybrid", "pll")

fuzz_settings = settings(max_examples=FUZZ_EXAMPLES, deadline=None)


def exact(matches):
    """Order-sensitive, identity-sensitive comparison form."""
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@given(instance=graph_and_query(max_query_size=4), k=st.integers(1, 8))
@fuzz_settings
def test_mmap_load_is_byte_identical_across_backends(instance, k):
    """binary save -> mmap load -> top_k ≡ the in-memory engine, all backends."""
    graph, query = instance
    with tempfile.TemporaryDirectory(prefix="repro-ridx-") as tmp:
        for backend in BACKENDS:
            engine = MatchEngine(graph, backend=backend)
            want = exact(engine.top_k(query, k))
            path = Path(tmp) / f"{backend}.ridx"
            engine.save_index(path)
            loaded = MatchEngine.load(path)
            assert loaded.backend_name == backend
            assert exact(loaded.top_k(query, k)) == want, backend


@given(instance=graph_and_query(max_query_size=3, direct_edges=True))
@fuzz_settings
def test_mmap_load_preserves_direct_edge_semantics(instance):
    """The is_direct flags survive the mmap round trip (`/` axis)."""
    graph, query = instance
    engine = MatchEngine(graph, backend="full")
    want = exact(engine.top_k(query, 6))
    with tempfile.TemporaryDirectory(prefix="repro-ridx-") as tmp:
        path = Path(tmp) / "full.ridx"
        engine.save_index(path)
        assert exact(MatchEngine.load(path).top_k(query, 6)) == want


class TestIntNodeIds:
    """The satellite regression: int ids must survive, Match-equal."""

    @pytest.fixture
    def int_graph(self):
        return graph_from_edges(
            {1: "A", 2: "B", 3: "B", 4: "C"},
            [(1, 2), (1, 3), (2, 4), (3, 4)],
        )

    @pytest.fixture
    def query(self):
        return QueryTree({"u": "A", "v": "B", "w": "C"},
                         [("u", "v"), ("v", "w")])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_match_equality_after_reload(self, tmp_path, int_graph, query,
                                         backend):
        engine = MatchEngine(int_graph, backend=backend)
        want = engine.top_k(query, 4)
        path = tmp_path / "int.ridx"
        engine.save_index(path)
        got = MatchEngine.load(path).top_k(query, 4)
        # Full dataclass equality — scores AND typed assignments.
        assert got == want
        assert all(
            isinstance(node, int)
            for match in got
            for node in match.assignment.values()
        )
        # The historical silent-coercion bug made these unequal:
        coerced = [
            Match(
                assignment={q: str(n) for q, n in m.assignment.items()},
                score=m.score,
            )
            for m in want
        ]
        assert got != coerced

    def test_json_format_refuses_int_ids(self, tmp_path, int_graph):
        engine = MatchEngine(int_graph, backend="full")
        with pytest.raises(IndexFormatError, match="binary"):
            engine.save_index(tmp_path / "int.json", format="json")


class TestMmapStoreBehavior:
    @pytest.fixture
    def saved(self, tmp_path):
        graph = graph_from_edges(
            {"v1": "a", "v2": "b", "v3": "b", "v4": "c"},
            [("v1", "v2"), ("v1", "v3"), ("v2", "v4"), ("v3", "v4")],
        )
        path = tmp_path / "g.ridx"
        MatchEngine(graph, backend="full", block_size=2).save_index(path)
        return path

    def test_blocks_stay_metered_through_iostats(self, saved):
        """mmap-backed tables pay the same simulated I/O as in-memory ones."""
        loaded = MatchEngine.load(saved)
        counter = loaded.store.counter
        before = counter.snapshot()
        loaded.top_k(QueryTree({"u": "a", "v": "b"}, [("u", "v")]), 3)
        delta = counter.delta_since(before)
        assert delta.tables_opened > 0
        assert delta.blocks_read > 0

    def test_resave_round_trip(self, saved, tmp_path):
        """An mmap-loaded engine can itself be persisted again."""
        loaded = MatchEngine.load(saved)
        query = QueryTree({"u": "a", "v": "b"}, [("u", "v")])
        want = loaded.top_k(query, 3)
        again = tmp_path / "again.ridx"
        loaded.save_index(again)
        assert MatchEngine.load(again).top_k(query, 3) == want

    def test_statistics_report_index_size(self, saved):
        stats = MatchEngine.load(saved).backend.stats()
        assert stats["pair_count"] > 0
        assert stats["bytes_estimate"] > 0


class TestServiceFromIndex:
    def test_cold_start_service(self, tmp_path):
        graph = graph_from_edges(
            {"v1": "a", "v2": "b", "v3": "c"},
            [("v1", "v2"), ("v2", "v3")],
        )
        engine = MatchEngine(graph, backend="full")
        path = tmp_path / "svc.ridx"
        engine.save_index(path)
        want = engine.top_k("a//b", 3)
        with MatchService.from_index(path, max_workers=2) as service:
            assert list(service.top_k("a//b", 3)) == want
            assert service.epoch == 0
            assert service.statistics()["backend"] == "full"
            # Updates derive fresh snapshots from the mmap-loaded one.
            service.apply_updates(nodes_added={"v9": "b"},
                                  edges_added=[("v1", "v9")])
            assert service.epoch == 1
            assert len(service.top_k("a//b", 3)) == 2

    def test_service_kwargs_split(self, tmp_path):
        graph = graph_from_edges({"v1": "a", "v2": "b"}, [("v1", "v2")])
        MatchEngine(graph, backend="pll").save_index(tmp_path / "s.ridx")
        with MatchService.from_index(
            tmp_path / "s.ridx", max_workers=1, plan_cache_size=4
        ) as service:
            assert service.max_workers == 1
            assert service.statistics()["plan_cache"]["capacity"] == 4
