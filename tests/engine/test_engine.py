"""MatchEngine construction: config validation, builder, deprecation shims."""

import pytest

from repro.engine import EngineConfig, MatchEngine
from repro.exceptions import EngineError
from repro.graph.query import QueryTree


class TestConfig:
    def test_defaults_validate(self):
        config = EngineConfig()
        assert config.backend == "auto"
        assert config.algorithm == "auto"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"backend": "nope"}, "unknown backend"),
            ({"algorithm": "nope"}, "unknown algorithm"),
            ({"block_size": 0}, "block_size"),
            ({"hot_fraction": 1.5}, "hot_fraction"),
            ({"backend": "constrained"}, "workload"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs, match):
        with pytest.raises(EngineError, match=match):
            EngineConfig(**kwargs)

    def test_replace_revalidates(self):
        config = EngineConfig()
        with pytest.raises(EngineError, match="unknown backend"):
            config.replace(backend="nope")

    def test_config_and_overrides_exclusive(self, figure4_graph):
        with pytest.raises(EngineError, match="not both"):
            MatchEngine(figure4_graph, EngineConfig(), backend="full")


class TestBuilder:
    def test_fluent_build(self, figure4_graph, figure4_query):
        engine = (
            MatchEngine.builder()
            .backend("pll")
            .algorithm("topk-en")
            .block_size(4)
            .build(figure4_graph)
        )
        assert engine.backend_name == "pll"
        assert engine.config.block_size == 4
        assert [m.score for m in engine.top_k(figure4_query, 2)] == [3, 4]

    def test_builder_workload(self, figure4_graph, figure4_query):
        engine = (
            MatchEngine.builder()
            .backend("constrained")
            .workload(figure4_query)
            .build(figure4_graph)
        )
        assert engine.backend_name == "constrained"
        assert engine.closure.is_partial

    def test_builder_node_weight(self, figure4_graph, figure4_query):
        engine = (
            MatchEngine.builder()
            .node_weight(lambda v: 1.0)
            .build(figure4_graph)
        )
        # 4 query nodes add 4 to every pure-distance score.
        assert engine.top_k(figure4_query, 1)[0].score == 7

    def test_builder_hot_fraction(self, figure4_graph):
        engine = (
            MatchEngine.builder()
            .backend("hybrid")
            .hot_fraction(0.5)
            .build(figure4_graph)
        )
        assert engine.store.hot_fraction == 0.5


class TestEngineBasics:
    def test_negative_k_rejected(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        with pytest.raises(ValueError, match="non-negative"):
            engine.top_k(figure4_query, -1)

    def test_k_zero(self, figure4_graph, figure4_query):
        assert MatchEngine(figure4_graph).top_k(figure4_query, 0) == []

    def test_reusable_across_queries(self, figure4_graph):
        engine = MatchEngine(figure4_graph)
        q1 = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        q2 = QueryTree({0: "c", 1: "d"}, [(0, 1)])
        assert engine.top_k(q1, 1)[0].score == 1
        assert engine.top_k(q2, 4)[-1].score == 4


class TestDeprecatedFacade:
    def test_tree_matcher_warns(self, figure4_graph):
        from repro import TreeMatcher

        with pytest.warns(DeprecationWarning, match="TreeMatcher is deprecated"):
            TreeMatcher(figure4_graph)

    def test_one_shot_warns(self, figure4_graph, figure4_query):
        from repro import top_k_tree_matches

        with pytest.warns(DeprecationWarning, match="top_k_tree_matches"):
            matches = top_k_tree_matches(figure4_graph, figure4_query, 1)
        assert matches[0].score == 3

    def test_shim_matches_engine(self, figure4_graph, figure4_query):
        from repro import TreeMatcher

        with pytest.warns(DeprecationWarning):
            shim = TreeMatcher(figure4_graph)
        engine = MatchEngine(figure4_graph, backend="full")
        for algorithm in ("topk-en", "dp-b", "brute-force"):
            assert [m.score for m in shim.top_k(figure4_query, 3, algorithm)] == [
                m.score for m in engine.top_k(figure4_query, 3, algorithm=algorithm)
            ]

    def test_shim_engine_object_for_brute_force(self, figure4_graph, figure4_query):
        from repro import TreeMatcher
        from repro.core.brute_force import BruteForceEngine

        with pytest.warns(DeprecationWarning):
            shim = TreeMatcher(figure4_graph)
        obj = shim.engine(figure4_query, "brute-force")
        assert isinstance(obj, BruteForceEngine)
        assert [m.score for m in obj.top_k(2)] == [3, 4]


class TestPreparedQueries:
    def test_prepared_matches_direct_execution(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        prepared = engine.prepare(figure4_query, k=3)
        assert [m.score for m in prepared.top_k()] == [
            m.score for m in engine.top_k(figure4_query, 3)
        ]
        # Another k reuses the plan without re-preparing.
        assert [m.score for m in prepared.top_k(1)] == [
            m.score for m in engine.top_k(figure4_query, 1)
        ]

    def test_prepared_plan_is_the_explained_plan(self, figure4_graph):
        engine = MatchEngine(figure4_graph)
        prepared = engine.prepare("a//b", k=5)
        assert prepared.explain() == engine.explain("a//b", 5)
        assert prepared.dsl == "a//b"

    def test_prepared_stream(self, figure4_graph):
        engine = MatchEngine(figure4_graph)
        stream = engine.prepare("a//c/d", k=2).stream()
        first = stream.take(2)
        assert [m.score for m in first] == [
            m.score for m in engine.top_k("a//c/d", 2)
        ]

    def test_prepared_cyclic_executes_but_does_not_stream(self):
        from repro.exceptions import EngineError
        from repro.graph.digraph import graph_from_edges

        graph = graph_from_edges(
            {"x": "A", "y": "B", "z": "C"},
            [("x", "y"), ("y", "z"), ("z", "x")],
        )
        engine = MatchEngine(graph, backend="full")
        prepared = engine.prepare("graph(a:A, b:B, c:C; a-b, b-c, c-a)", k=2)
        assert len(prepared.top_k()) == 1
        with pytest.raises(EngineError, match="do not stream"):
            prepared.stream()

    def test_explicit_algorithm_is_pinned(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        prepared = engine.prepare(figure4_query, k=3, algorithm="dp-b")
        assert prepared.plan.algorithm == "dp-b"
        assert [m.score for m in prepared.top_k()] == [3, 4, 5]
