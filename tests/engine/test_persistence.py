"""Index persistence: save/load round-trips that skip the offline phase.

Both registered formats are covered: ``binary`` (the default — mmap-paged
``.ridx``) and ``json`` (interchange).  Binary-specific behavior (id-type
preservation, corruption handling, property-based equivalence) lives in
``test_binary_persistence.py``.
"""

import json

import pytest

from repro.engine import BACKENDS, MatchEngine
from repro.exceptions import EngineError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.io import sniff_index_format

FORMATS = ("binary", "json")


@pytest.fixture
def string_graph():
    """Figure-4-like graph with string node ids (ids survive JSON as-is)."""
    return graph_from_edges(
        {
            "v1": "a", "v2": "b", "v3": "c", "v4": "c",
            "v5": "c", "v6": "c", "v7": "d",
        },
        [
            ("v1", "v2", 1), ("v1", "v3", 1), ("v1", "v4", 1),
            ("v1", "v5", 1), ("v1", "v6", 1), ("v3", "v7", 3),
            ("v4", "v7", 4), ("v5", "v7", 1), ("v6", "v7", 2),
        ],
    )


@pytest.fixture
def query():
    return QueryTree(
        {"u1": "a", "u2": "b", "u3": "c", "u4": "d"},
        [("u1", "u2"), ("u1", "u3"), ("u3", "u4")],
    )


class TestRoundTrip:
    @pytest.mark.parametrize("format", FORMATS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_answers_after_reload(
        self, tmp_path, string_graph, query, backend, format
    ):
        kwargs = {"workload": (query,)} if backend == "constrained" else {}
        engine = MatchEngine(string_graph, backend=backend, **kwargs)
        want = [m.score for m in engine.top_k(query, 4)]
        path = tmp_path / "index.ridx"
        engine.save_index(path, format=format)
        assert sniff_index_format(path) == format

        loaded = MatchEngine.load(path)
        assert loaded.backend_name == backend
        assert [m.score for m in loaded.top_k(query, 4)] == want == [3, 4, 5, 6]

    def test_binary_is_the_default_format(self, tmp_path, string_graph):
        engine = MatchEngine(string_graph, backend="full")
        path = tmp_path / "index.ridx"
        engine.save_index(path)
        assert sniff_index_format(path) == "binary"

    @pytest.mark.parametrize("format", FORMATS)
    def test_no_closure_recompute_on_load(self, tmp_path, string_graph, query,
                                          monkeypatch, format):
        """A loaded full index answers without re-running shortest paths."""
        engine = MatchEngine(string_graph, backend="full")
        path = tmp_path / "index.any"
        engine.save_index(path, format=format)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("shortest-path computation ran after load")

        import repro.graph.traversal as traversal
        from repro.compact import CompactGraph

        monkeypatch.setattr(traversal, "single_source_distances", boom)
        monkeypatch.setattr(CompactGraph, "_shortest", boom)
        loaded = MatchEngine.load(path)
        assert loaded.closure.build_seconds == 0.0
        assert [m.score for m in loaded.top_k(query, 2)] == [3, 4]

    @pytest.mark.parametrize("format", FORMATS)
    def test_no_pll_recompute_on_load(self, tmp_path, string_graph, query,
                                      monkeypatch, format):
        """A loaded pll index answers without re-running pruned searches."""
        engine = MatchEngine(string_graph, backend="pll")
        path = tmp_path / "index.any"
        engine.save_index(path, format=format)

        from repro.closure.pll import PrunedLandmarkIndex

        def boom(self, *args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pruned search ran after load")

        monkeypatch.setattr(PrunedLandmarkIndex, "_expand", boom)
        loaded = MatchEngine.load(path)
        assert [m.score for m in loaded.top_k(query, 2)] == [3, 4]
        # Point distances still come from the restored labels.
        assert loaded.store.distance("v1", "v7") == 2

    def test_binary_load_skips_block_layout(self, tmp_path, string_graph,
                                            query, monkeypatch):
        """The mmap path adopts the pair tables without re-laying them out."""
        engine = MatchEngine(string_graph, backend="full")
        path = tmp_path / "index.ridx"
        engine.save_index(path)

        from repro.closure.store import ClosureStore

        def boom(self):  # pragma: no cover - failure path
            raise AssertionError("block layout ran after a binary load")

        monkeypatch.setattr(ClosureStore, "_build", boom)
        loaded = MatchEngine.load(path)
        assert [m.score for m in loaded.top_k(query, 2)] == [3, 4]

    @pytest.mark.parametrize("format", FORMATS)
    def test_block_size_round_trips(self, tmp_path, string_graph, query, format):
        engine = MatchEngine(string_graph, backend="full", block_size=2)
        path = tmp_path / "index.any"
        engine.save_index(path, format=format)
        loaded = MatchEngine.load(path)
        assert loaded.config.block_size == 2
        assert loaded.store.directory.block_size == 2

    @pytest.mark.parametrize("format", FORMATS)
    def test_constrained_workload_round_trips(self, tmp_path, string_graph,
                                              query, format):
        engine = MatchEngine(string_graph, backend="constrained", workload=(query,))
        path = tmp_path / "index.any"
        engine.save_index(path, format=format)
        loaded = MatchEngine.load(path)
        assert loaded.backend_name == "constrained"
        assert len(loaded.config.workload) == 1
        assert loaded.closure.is_partial

    def test_hybrid_hot_pairs_round_trip(self, tmp_path, string_graph, query):
        engine = MatchEngine(string_graph, backend="hybrid", hot_fraction=0.5)
        path = tmp_path / "index.ridx"
        engine.save_index(path)
        loaded = MatchEngine.load(path)
        assert loaded.store.hot_pairs == engine.store.hot_pairs
        assert loaded.config.hot_fraction == 0.5

    def test_unknown_format_rejected(self, tmp_path, string_graph):
        engine = MatchEngine(string_graph, backend="full")
        with pytest.raises(EngineError, match="unknown index format"):
            engine.save_index(tmp_path / "x.idx", format="msgpack")


class TestDocumentValidation:
    def test_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "matches"}))
        with pytest.raises(EngineError, match="not a repro-index"):
            MatchEngine.load(path)

    def test_rejects_future_versions(self, tmp_path, string_graph):
        engine = MatchEngine(string_graph, backend="full")
        path = tmp_path / "index.json"
        engine.save_index(path, format="json")
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(EngineError, match="unsupported index version"):
            MatchEngine.load(path)
