"""Planner golden tests: deterministic choices with inspectable reasons."""

import pytest

from repro.engine import EngineConfig, MatchEngine
from repro.engine.planner import choose_backend
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryTree


def _big_graph(num_nodes: int) -> LabeledDiGraph:
    """A cheap path graph of the requested size (structure irrelevant to
    backend choice, which looks only at node counts)."""
    g = LabeledDiGraph()
    for i in range(num_nodes):
        g.add_node(i, f"l{i % 5}")
    for i in range(num_nodes - 1):
        g.add_edge(i, i + 1)
    return g


class TestBackendChoice:
    def test_small_graph_full(self, figure4_graph):
        name, reasons = choose_backend(figure4_graph, EngineConfig())
        assert name == "full"
        assert any("full closure" in r for r in reasons)

    def test_workload_forces_constrained(self, figure4_graph, figure4_query):
        config = EngineConfig(workload=(figure4_query,))
        name, reasons = choose_backend(figure4_graph, config)
        assert name == "constrained"
        assert any("workload" in r for r in reasons)

    def test_large_graph_ondemand(self):
        config = EngineConfig(small_graph_nodes=10)
        name, reasons = choose_backend(_big_graph(50), config)
        assert name == "ondemand"
        assert any("on demand" in r for r in reasons)

    def test_hybrid_never_auto_picked(self):
        """Hybrid materializes the full closure AND a 2-hop index, so it
        must be an explicit choice, never the auto default."""
        for n in (5, 50, 500):
            name, _ = choose_backend(_big_graph(n), EngineConfig(small_graph_nodes=10))
            assert name != "hybrid"

    def test_explicit_backend_wins(self):
        config = EngineConfig(backend="pll", small_graph_nodes=10)
        name, reasons = choose_backend(_big_graph(50), config)
        assert name == "pll"
        assert any("explicitly requested" in r for r in reasons)


class TestExplainGoldens:
    def test_tiny_query_plans_full_load(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        plan = engine.explain(figure4_query, k=3)
        assert plan.algorithm == "topk"
        assert plan.backend == "full"
        assert plan.query_nodes == 4
        # a=1, b=1, c=4, d=1 candidates in the Figure 4 graph.
        assert dict(plan.candidate_estimates) == {"u1": 1, "u2": 1, "u3": 4, "u4": 1}
        assert plan.est_runtime_nodes == 7
        assert any("tiny candidate space" in r for r in plan.reasons)

    def test_large_space_small_k_plans_lazy(self):
        engine = MatchEngine(_big_graph(300), full_load_threshold=64)
        query = QueryTree({0: "l0", 1: "l1"}, [(0, 1)])
        plan = engine.explain(query, k=2)
        assert plan.algorithm == "topk-en"
        assert plan.est_runtime_nodes == 120  # 60 l0-nodes + 60 l1-nodes
        assert any("lazy access" in r for r in plan.reasons)

    def test_huge_k_amortizes_full_load(self):
        engine = MatchEngine(_big_graph(300))
        query = QueryTree({0: "l0", 1: "l1"}, [(0, 1)])
        plan = engine.explain(query, k=500)
        assert plan.algorithm == "topk"
        assert any("amortizes" in r for r in plan.reasons)

    def test_single_node_query(self, figure4_graph):
        engine = MatchEngine(figure4_graph)
        plan = engine.explain(QueryTree({0: "c"}, []), k=3)
        assert plan.algorithm == "topk-en"
        assert any("single-node" in r for r in plan.reasons)

    def test_explicit_algorithm_recorded(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        plan = engine.explain(figure4_query, k=3, algorithm="dp-p")
        assert plan.algorithm == "dp-p"
        assert any("explicitly requested" in r for r in plan.reasons)

    def test_describe_mentions_choices(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        text = engine.explain(figure4_query, k=3).describe()
        assert "algorithm='topk'" in text
        assert "backend='full'" in text
        assert "candidates per query node" in text

    def test_unknown_algorithm_raises(self, figure4_graph, figure4_query):
        engine = MatchEngine(figure4_graph)
        with pytest.raises(ValueError, match="unknown algorithm"):
            engine.explain(figure4_query, k=1, algorithm="magic")

    def test_plan_matches_execution(self, figure4_graph, figure4_query):
        """The planned algorithm is what stream() actually runs."""
        engine = MatchEngine(figure4_graph)
        stream = engine.stream(figure4_query)
        assert stream.plan.algorithm == engine.explain(figure4_query).algorithm
