"""ResultStream semantics: lazy pulls, resume-past-k, independent iteration."""

import pytest

from repro.engine import MatchEngine
from repro.engine.config import ALGORITHMS
from repro.graph.query import QueryTree


@pytest.fixture
def engine(figure4_graph):
    return MatchEngine(figure4_graph, backend="full")


class TestStreaming:
    def test_take_resumes_without_recompute(self, engine, figure4_query):
        stream = engine.stream(figure4_query)
        assert [m.score for m in stream.take(2)] == [3, 4]
        # Resuming continues from rank 3 — same enumerator, no rebuild.
        assert [m.score for m in stream.take(2)] == [5, 6]
        assert stream.consumed == 4

    def test_next_and_exhaustion(self, engine):
        query = QueryTree({0: "a", 1: "b"}, [(0, 1)])
        stream = engine.stream(query)
        first = stream.next()
        assert first is not None and first.score == 1
        assert stream.next() is None
        assert stream.exhausted

    def test_iteration_replays_from_rank_one(self, engine, figure4_query):
        stream = engine.stream(figure4_query)
        stream.take(3)  # move the cursor
        scores = [m.score for m in stream]
        assert scores[:4] == [3, 4, 5, 6]
        # The cursor was not disturbed by the full iteration.
        assert stream.consumed == 3

    def test_dunder_next(self, engine, figure4_query):
        stream = engine.stream(figure4_query)
        assert next(stream).score == 3
        assert next(stream).score == 4

    def test_negative_take_rejected(self, engine, figure4_query):
        with pytest.raises(ValueError, match="non-negative"):
            engine.stream(figure4_query).take(-1)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_streams(self, engine, figure4_query, algorithm):
        stream = engine.stream(figure4_query, algorithm=algorithm)
        assert [m.score for m in stream.take(3)] == [3, 4, 5]
        assert stream.stats is not None

    def test_stream_exposes_plan(self, engine, figure4_query):
        stream = engine.stream(figure4_query, algorithm="dp-b")
        assert stream.plan.algorithm == "dp-b"

    def test_results_snapshot(self, engine, figure4_query):
        stream = engine.stream(figure4_query)
        stream.take(2)
        assert [m.score for m in stream.results] == [3, 4]


class TestBruteForceEngine:
    """Satellite fix: brute force honors k through an engine-like object."""

    def test_top_k_honors_k(self, engine, figure4_query):
        matches = engine.top_k(figure4_query, 2, algorithm="brute-force")
        assert [m.score for m in matches] == [3, 4]

    def test_engine_like_object(self, engine, figure4_query):
        from repro.core.brute_force import BruteForceEngine

        raw = engine.engine_for(figure4_query, algorithm="brute-force")
        assert isinstance(raw, BruteForceEngine)
        assert raw.compute_first() == 3
        assert [m.score for m in raw.top_k(3)] == [3, 4, 5]
        assert raw.stats.rounds >= 3

    def test_agrees_with_lazy_engine(self, engine, figure4_query):
        brute = engine.top_k(figure4_query, 6, algorithm="brute-force")
        lazy = engine.top_k(figure4_query, 6, algorithm="topk-en")
        assert [m.score for m in brute] == [m.score for m in lazy]
