"""Tests for kGPM query decomposition."""

import pytest

from repro.closure.transitive import TransitiveClosure
from repro.exceptions import DecompositionError
from repro.gpm.decompose import (
    best_decomposition,
    candidate_decompositions,
    decomposition_cost,
    spanning_tree,
)
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryGraph


def triangle():
    return QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])


class TestSpanningTree:
    def test_covers_all_nodes(self):
        tree, non_tree = spanning_tree(triangle())
        assert tree.num_nodes == 3
        assert len(list(tree.edges())) == 2
        assert len(non_tree) == 1

    def test_root_default_max_degree(self):
        qg = QueryGraph(
            {0: "a", 1: "b", 2: "c", 3: "d"},
            [(0, 1), (0, 2), (0, 3)],
        )
        tree, non_tree = spanning_tree(qg)
        assert tree.root == 0
        assert non_tree == []

    def test_explicit_root(self):
        tree, _ = spanning_tree(triangle(), root=2)
        assert tree.root == 2

    def test_unknown_root(self):
        with pytest.raises(DecompositionError):
            spanning_tree(triangle(), root=99)

    def test_tree_plus_nontree_is_query(self):
        qg = triangle()
        tree, non_tree = spanning_tree(qg)
        covered = {frozenset((p, c)) for p, c, _ in tree.edges()}
        covered |= {frozenset(e) for e in non_tree}
        assert covered == {frozenset(e) for e in qg.edges()}


class TestDecompositionChoice:
    def test_candidates_one_per_root(self):
        decos = candidate_decompositions(triangle())
        assert len(decos) == 3
        assert {d[0].root for d in decos} == {0, 1, 2}

    def test_cost_uses_type_counts(self):
        tree, non_tree = spanning_tree(triangle(), root=0)
        counts = {("a", "b"): 100, ("b", "c"): 1, ("a", "c"): 1}
        cost = decomposition_cost((tree, non_tree), counts)
        # Tree from root 0 covers (a,b) and (a,c) -> 101.
        assert cost == 101

    def test_best_decomposition_picks_cheapest(self):
        # Data graph where a<->b closure entries dominate: the best tree
        # avoids the (a, b) edge when possible.
        g = graph_from_edges(
            {f"a{i}": "a" for i in range(4)}
            | {f"b{i}": "b" for i in range(4)}
            | {"c0": "c"},
            [(f"a{i}", f"b{j}") for i in range(4) for j in range(4)]
            + [("b0", "c0"), ("c0", "a0")],
        )
        closure = TransitiveClosure(g.bidirected())
        qg = triangle()
        tree, non_tree = best_decomposition(qg, closure)
        counts = closure.same_type_statistics()
        cost = decomposition_cost((tree, non_tree), counts)
        for other in candidate_decompositions(qg):
            assert cost <= decomposition_cost(other, counts)
