"""Tests for kGPM (mtree / mtree+)."""

import random

import pytest

from repro.gpm import KGPMEngine, brute_force_kgpm, kgpm_matches
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import QueryGraph


def square_graph():
    """A 4-cycle data graph with distinct labels plus a chord."""
    return graph_from_edges(
        {"w": "a", "x": "b", "y": "c", "z": "d"},
        [("w", "x"), ("x", "y"), ("y", "z"), ("z", "w"), ("w", "y")],
    )


class TestBasics:
    def test_triangle_query(self):
        g = square_graph()
        q = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        matches = kgpm_matches(g, q, 3)
        assert len(matches) == 1
        assert matches[0].score == 3  # all three pairs adjacent
        assert matches[0].assignment == {0: "w", 1: "x", 2: "y"}

    def test_tree_query_passthrough(self):
        g = square_graph()
        q = QueryGraph({0: "a", 1: "b"}, [(0, 1)])
        matches = kgpm_matches(g, q, 3)
        assert [m.score for m in matches] == [1]

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            KGPMEngine(square_graph(), tree_algorithm="nope")

    def test_k_zero(self):
        g = square_graph()
        q = QueryGraph({0: "a", 1: "b"}, [(0, 1)])
        assert KGPMEngine(g).top_k(q, 0) == []

    def test_stats_populated(self):
        g = square_graph()
        q = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        engine = KGPMEngine(g)
        engine.top_k(q, 1)
        assert engine.stats.tree_matches_consumed >= 1
        assert engine.stats.verify_probes >= 1


class TestAgreement:
    @pytest.mark.parametrize("seed", range(20))
    def test_mtree_variants_match_oracle(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 11), rng.randint(8, 24), num_labels=4, seed=seed
        )
        labels = sorted(g.labels())
        rng.shuffle(labels)
        size = min(len(labels), rng.randint(3, 4))
        qlabels = {i: labels[i] for i in range(size)}
        edges = [(rng.randrange(i), i) for i in range(1, size)]
        for _ in range(rng.randint(0, 2)):
            a, b = rng.sample(range(size), 2)
            edges.append((a, b))
        q = QueryGraph(qlabels, edges)
        plus = KGPMEngine(g, tree_algorithm="topk-en")
        base = KGPMEngine(
            g, tree_algorithm="dp-b", closure=plus.closure, store=plus.store
        )
        oracle = brute_force_kgpm(plus, q, 500)
        k = rng.choice([1, 4, 12])
        want = [m.score for m in oracle[:k]]
        assert [m.score for m in plus.top_k(q, k)] == want
        assert [m.score for m in base.top_k(q, k)] == want

    @pytest.mark.parametrize("seed", range(6))
    def test_decomposition_choice_does_not_change_results(self, seed):
        g = erdos_renyi_graph(8, 18, num_labels=4, seed=seed)
        labels = sorted(g.labels())
        if len(labels) < 3:
            pytest.skip("degenerate labeling")
        q = QueryGraph(
            {0: labels[0], 1: labels[1], 2: labels[2]},
            [(0, 1), (1, 2), (2, 0)],
        )
        engine = KGPMEngine(g)
        a = [m.score for m in engine.top_k(q, 5, choose_best_tree=True)]
        b = [m.score for m in engine.top_k(q, 5, choose_best_tree=False)]
        assert a == b

    def test_verified_scores_include_nontree_edges(self):
        g = graph_from_edges(
            {"w": "a", "x": "b", "y": "c"},
            [("w", "x"), ("x", "y")],
        )
        q = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        matches = kgpm_matches(g, q, 3)
        # delta(a, c) = 2 through b (bidirected), so the triangle costs 4.
        assert [m.score for m in matches] == [4]

    def test_unreachable_pairs_discarded(self):
        g = graph_from_edges(
            {"w": "a", "x": "b", "y": "c", "w2": "a", "x2": "b"},
            [("w", "x"), ("x", "y"), ("w2", "x2")],
        )
        q = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        engine = KGPMEngine(g)
        matches = engine.top_k(q, 10)
        assert len(matches) == 1  # the (w2, x2) component has no c node
