"""Unit tests for the labeled digraph data model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDiGraph, graph_from_edges


def small_graph() -> LabeledDiGraph:
    return graph_from_edges(
        {"x": "a", "y": "b", "z": "b"},
        [("x", "y", 2), ("x", "z"), ("y", "z", 3)],
    )


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_add_node_idempotent_same_label(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        g.add_node(1, "a")
        assert g.num_nodes == 1

    def test_relabel_rejected(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        with pytest.raises(GraphError, match="relabel"):
            g.add_node(1, "b")

    def test_none_label_rejected(self):
        g = LabeledDiGraph()
        with pytest.raises(GraphError):
            g.add_node(1, None)

    def test_edge_requires_endpoints(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        with pytest.raises(GraphError):
            g.add_edge(1, 2)

    def test_self_loop_rejected(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        with pytest.raises(GraphError, match="positive"):
            g.add_edge(1, 2, 0)
        with pytest.raises(GraphError, match="positive"):
            g.add_edge(1, 2, -3)

    def test_parallel_edges_keep_minimum_weight(self):
        g = LabeledDiGraph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2, 5)
        g.add_edge(1, 2, 2)
        g.add_edge(1, 2, 9)
        assert g.edge_weight(1, 2) == 2
        assert g.num_edges == 1


class TestInspection:
    def test_labels_and_lookup(self):
        g = small_graph()
        assert g.label("x") == "a"
        assert g.labels() == {"a", "b"}
        assert g.nodes_with_label("b") == frozenset({"y", "z"})
        assert g.nodes_with_label("missing") == frozenset()

    def test_successors_predecessors(self):
        g = small_graph()
        assert dict(g.successors("x")) == {"y": 2, "z": 1}
        assert dict(g.predecessors("z")) == {"x": 1, "y": 3}
        assert g.out_degree("x") == 2
        assert g.in_degree("z") == 2

    def test_has_edge_and_weight(self):
        g = small_graph()
        assert g.has_edge("x", "y")
        assert not g.has_edge("y", "x")
        assert g.edge_weight("y", "z") == 3
        with pytest.raises(GraphError):
            g.edge_weight("z", "x")

    def test_unknown_node_raises(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.label("nope")
        with pytest.raises(GraphError):
            g.successors("nope")
        with pytest.raises(GraphError):
            g.predecessors("nope")

    def test_is_unit_weighted(self):
        g = small_graph()
        assert not g.is_unit_weighted()
        unit = graph_from_edges({1: "a", 2: "b"}, [(1, 2)])
        assert unit.is_unit_weighted()

    def test_edges_iteration(self):
        g = small_graph()
        assert sorted(g.edges()) == [("x", "y", 2), ("x", "z", 1), ("y", "z", 3)]


class TestMutation:
    def test_remove_edge(self):
        g = small_graph()
        g.remove_edge("x", "y")
        assert not g.has_edge("x", "y")
        assert g.num_edges == 2
        with pytest.raises(GraphError):
            g.remove_edge("x", "y")

    def test_remove_node_cascades(self):
        g = small_graph()
        g.remove_node("z")
        assert g.num_nodes == 2
        assert g.num_edges == 1  # only x->y remains
        assert "b" in g.labels()  # y still carries b
        g.remove_node("y")
        assert g.labels() == {"a"}

    def test_remove_missing_node(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.remove_node("ghost")


class TestDerivation:
    def test_copy_is_independent(self):
        g = small_graph()
        clone = g.copy()
        clone.remove_node("z")
        assert g.num_nodes == 3
        assert clone.num_nodes == 2

    def test_subgraph(self):
        g = small_graph()
        sub = g.subgraph(["x", "y"])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.has_edge("x", "y")

    def test_subgraph_unknown_node(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.subgraph(["x", "ghost"])

    def test_bidirected_doubles_edges(self):
        g = small_graph()
        both = g.bidirected()
        assert both.num_edges == 6
        assert both.has_edge("y", "x")
        assert both.edge_weight("y", "x") == 2


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_edge_count_matches_distinct_pairs(edges):
    """Property: num_edges equals the number of distinct non-loop pairs."""
    g = LabeledDiGraph()
    for i in range(10):
        g.add_node(i, f"l{i % 3}")
    expected = set()
    for tail, head in edges:
        if tail == head:
            continue
        g.add_edge(tail, head)
        expected.add((tail, head))
    assert g.num_edges == len(expected)
    assert {(t, h) for t, h, _ in g.edges()} == expected
