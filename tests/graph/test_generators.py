"""Tests for the synthetic dataset generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    citation_graph,
    erdos_renyi_graph,
    layered_graph,
    powerlaw_graph,
)
from repro.graph.traversal import connected_component


class TestPowerlaw:
    def test_determinism(self):
        a = powerlaw_graph(300, seed=5)
        b = powerlaw_graph(300, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        assert {n: a.label(n) for n in a.nodes()} == {
            n: b.label(n) for n in b.nodes()
        }

    def test_different_seeds_differ(self):
        a = powerlaw_graph(300, seed=1)
        b = powerlaw_graph(300, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_average_out_degree_close_to_target(self):
        g = powerlaw_graph(2000, avg_out_degree=3.0, seed=0)
        avg = g.num_edges / g.num_nodes
        assert 1.5 <= avg <= 4.5

    def test_heavy_tail_in_degree(self):
        g = powerlaw_graph(2000, seed=0)
        degrees = sorted((g.in_degree(v) for v in g.nodes()), reverse=True)
        # Preferential attachment: the hottest node dominates the median.
        assert degrees[0] >= 10 * max(degrees[len(degrees) // 2], 1)

    def test_weakly_connected(self):
        g = powerlaw_graph(500, seed=3)
        assert len(connected_component(g, 0)) == g.num_nodes

    def test_label_alphabet_respected(self):
        g = powerlaw_graph(400, num_labels=7, seed=0)
        assert len(g.labels()) <= 7

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            powerlaw_graph(1)


class TestCitation:
    def test_is_dag(self):
        g = citation_graph(500, seed=4)
        # Edges always point from newer (higher id) to older papers.
        assert all(tail > head for tail, head, _ in g.edges())

    def test_determinism(self):
        a = citation_graph(300, seed=9)
        b = citation_graph(300, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_zipf_labels_are_skewed(self):
        g = citation_graph(3000, num_labels=30, seed=0)
        counts = sorted(
            (len(g.nodes_with_label(l)) for l in g.labels()), reverse=True
        )
        assert counts[0] >= 4 * counts[-1]

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            citation_graph(1)


class TestErdosRenyi:
    def test_edge_budget(self):
        g = erdos_renyi_graph(50, 120, seed=0)
        assert g.num_edges <= 120
        assert g.num_edges >= 100  # dense enough to nearly fill the budget

    def test_determinism(self):
        a = erdos_renyi_graph(40, 80, seed=2)
        b = erdos_renyi_graph(40, 80, seed=2)
        assert sorted(a.edges()) == sorted(b.edges())


class TestLayered:
    def test_structure(self):
        g = layered_graph(["a", "b", "c"], nodes_per_layer=4, seed=1)
        assert g.num_nodes == 12
        for tail, head, _ in g.edges():
            assert g.label(tail) != g.label(head)

    def test_every_upper_node_has_a_child(self):
        g = layered_graph(["a", "b"], nodes_per_layer=5,
                          edge_probability=0.01, seed=1)
        for v in g.nodes_with_label("a"):
            assert g.out_degree(v) >= 1

    def test_weight_range(self):
        g = layered_graph(["a", "b"], 3, weight_range=(2, 5), seed=0)
        assert all(2 <= w <= 5 for _, __, w in g.edges())
