"""Unit tests for query trees and query graphs."""

import pytest

from repro.exceptions import NotATreeError, QueryError
from repro.graph.query import (
    WILDCARD,
    EdgeType,
    QueryGraph,
    QueryTree,
    path_query,
    star_query,
)


def fig2_query() -> QueryTree:
    """u1(a) -> u2(b), u1 -> u3(c); u3 -> u4(d), u3 -> u5(e)."""
    return QueryTree(
        {"u1": "a", "u2": "b", "u3": "c", "u4": "d", "u5": "e"},
        [("u1", "u2"), ("u1", "u3"), ("u3", "u4"), ("u3", "u5")],
    )


class TestShapeValidation:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            QueryTree({}, [])

    def test_single_node_tree(self):
        q = QueryTree({0: "a"}, [])
        assert q.root == 0
        assert q.num_nodes == 1
        assert q.is_leaf(0)

    def test_two_parents_rejected(self):
        with pytest.raises(NotATreeError, match="two parents"):
            QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 2), (1, 2)])

    def test_two_roots_rejected(self):
        with pytest.raises(NotATreeError, match="root"):
            QueryTree({0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (2, 3)])

    def test_cycle_rejected(self):
        with pytest.raises(NotATreeError):
            QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(NotATreeError):
            QueryTree({0: "a", 1: "b"}, [(0, 0), (0, 1)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(QueryError):
            QueryTree({0: "a"}, [(0, 99)])


class TestErrorDiagnostics:
    """Construction/lookup errors are QueryError naming the offending node,
    never a bare KeyError (satellite hardening)."""

    def test_cycle_names_a_member(self):
        with pytest.raises(NotATreeError, match="cycle"):
            QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])

    def test_multiple_roots_named(self):
        with pytest.raises(NotATreeError, match="0.*2|2.*0"):
            QueryTree({0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (2, 3)])

    def test_disconnected_cycle_component_named(self):
        # One real root plus a detached 2-cycle: not connected.
        with pytest.raises(NotATreeError, match="not reachable from the root"):
            QueryTree({0: "a", 1: "b", 2: "c"}, [(1, 2), (2, 1)])

    def test_unknown_edge_names_node(self):
        with pytest.raises(QueryError, match="99"):
            QueryTree({0: "a"}, [(0, 99)])

    @pytest.mark.parametrize(
        "method", ["position", "subtree_size", "depth", "label", "parent", "children"]
    )
    def test_tree_lookups_raise_query_error(self, method):
        q = fig2_query()
        with pytest.raises(QueryError, match="unknown"):
            getattr(q, method)("nope")

    def test_graph_unknown_edge_names_node(self):
        with pytest.raises(QueryError, match="z"):
            QueryGraph({"x": "a", "y": "b"}, [("x", "y"), ("x", "z")])

    def test_graph_disconnected_names_node(self):
        with pytest.raises(QueryError, match="connected"):
            QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1)])

    def test_graph_degree_raises_query_error(self):
        g = QueryGraph({0: "a", 1: "b"}, [(0, 1)])
        with pytest.raises(QueryError, match="unknown"):
            g.degree(99)

    def test_empty_graph_rejected(self):
        with pytest.raises(QueryError, match="at least one node"):
            QueryGraph({}, [])


class TestBfsOrder:
    def test_lemma_3_1_parent_precedes_child(self):
        q = fig2_query()
        order = list(q.bfs_order())
        for node in order[1:]:
            assert order.index(q.parent(node)) < order.index(node)

    def test_root_first(self):
        q = fig2_query()
        assert q.bfs_order()[0] == "u1"
        assert q.position("u1") == 0

    def test_breadth_first_levels(self):
        q = fig2_query()
        depths = [q.depth(u) for u in q.bfs_order()]
        assert depths == sorted(depths)


class TestAccessors:
    def test_children_and_parent(self):
        q = fig2_query()
        assert list(q.children("u1")) == ["u2", "u3"]
        assert q.parent("u4") == "u3"
        assert q.parent("u1") is None
        assert q.is_leaf("u2")
        assert not q.is_leaf("u3")

    def test_subtree_sizes(self):
        q = fig2_query()
        assert q.subtree_size("u1") == 5
        assert q.subtree_size("u3") == 3
        assert q.subtree_size("u4") == 1

    def test_remaining_lower_bound(self):
        q = fig2_query()
        # Paper: L(u) = nT - 1 - |T_u|; zero for the root.
        assert q.remaining_lower_bound("u1") == 0
        assert q.remaining_lower_bound("u3") == 5 - 1 - 3
        assert q.remaining_lower_bound("u4") == 5 - 1 - 1

    def test_max_degree(self):
        q = fig2_query()
        assert q.max_degree() == 2

    def test_edge_types_default_descendant(self):
        q = fig2_query()
        assert q.edge_type("u1", "u2") is EdgeType.DESCENDANT
        assert q.uses_only_descendant_edges()

    def test_explicit_child_edge(self):
        q = QueryTree({0: "a", 1: "b"}, [(0, 1, EdgeType.CHILD)])
        assert q.edge_type(0, 1) is EdgeType.CHILD
        assert not q.uses_only_descendant_edges()

    def test_edge_type_unknown_edge(self):
        q = fig2_query()
        with pytest.raises(QueryError):
            q.edge_type("u2", "u1")

    def test_unknown_node_accessors(self):
        q = fig2_query()
        with pytest.raises(QueryError):
            q.label("nope")
        with pytest.raises(QueryError):
            q.children("nope")
        with pytest.raises(QueryError):
            q.parent("nope")


class TestLabelProperties:
    def test_distinct_labels(self):
        q = fig2_query()
        assert q.has_distinct_labels()
        assert q.label_duplication_ratio() == 0.0

    def test_duplicate_labels_ratio(self):
        q = QueryTree({0: "a", 1: "b", 2: "b", 3: "a"}, [(0, 1), (0, 2), (1, 3)])
        assert not q.has_distinct_labels()
        assert q.label_duplication_ratio() == pytest.approx(0.5)

    def test_wildcard_detection(self):
        q = QueryTree({0: "a", 1: WILDCARD}, [(0, 1)])
        assert q.is_wildcard(1)
        assert not q.is_wildcard(0)
        assert not q.has_distinct_labels()


class TestBuilders:
    def test_path_query(self):
        q = path_query(["a", "b", "c"])
        assert q.num_nodes == 3
        assert q.depth(2) == 2
        assert q.label(q.root) == "a"

    def test_path_query_empty(self):
        with pytest.raises(QueryError):
            path_query([])

    def test_star_query(self):
        q = star_query("r", ["x", "y", "z"])
        assert q.num_nodes == 4
        assert q.max_degree() == 3
        assert all(q.is_leaf(c) for c in q.children(q.root))


class TestQueryGraph:
    def test_basic(self):
        qg = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        assert qg.num_nodes == 3
        assert qg.num_edges == 3
        assert qg.degree(0) == 2
        assert qg.neighbors(1) == frozenset({0, 2})

    def test_duplicate_edges_collapse(self):
        qg = QueryGraph({0: "a", 1: "b"}, [(0, 1), (1, 0)])
        assert qg.num_edges == 1

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError, match="connected"):
            QueryGraph({0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({0: "a", 1: "b"}, [(0, 0), (0, 1)])

    def test_unknown_node_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({0: "a"}, [(0, 5)])

    def test_labels_copy(self):
        qg = QueryGraph({0: "a", 1: "b"}, [(0, 1)])
        labels = qg.labels()
        labels[0] = "mutated"
        assert qg.label(0) == "a"
