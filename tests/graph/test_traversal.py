"""Tests for traversal primitives (BFS/Dijkstra distances)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.traversal import (
    bfs_distances,
    connected_component,
    dijkstra_distances,
    reachable_from,
    single_source_distances,
)


def line_graph():
    return graph_from_edges(
        {i: f"l{i}" for i in range(4)}, [(0, 1), (1, 2), (2, 3)]
    )


class TestBfs:
    def test_line(self):
        g = line_graph()
        assert bfs_distances(g, 0) == {1: 1, 2: 2, 3: 3}
        assert bfs_distances(g, 3) == {}

    def test_no_self_distance_without_cycle(self):
        g = line_graph()
        assert 0 not in bfs_distances(g, 0)

    def test_cycle_gives_self_distance(self):
        g = graph_from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        d = bfs_distances(g, 0)
        assert d[0] == 3
        assert d[1] == 1
        assert d[2] == 2

    def test_two_cycle(self):
        g = graph_from_edges({0: "a", 1: "b"}, [(0, 1), (1, 0)])
        assert bfs_distances(g, 0) == {1: 1, 0: 2}


class TestDijkstra:
    def test_weighted_shortcut(self):
        g = graph_from_edges(
            {0: "a", 1: "b", 2: "c"},
            [(0, 1, 10), (0, 2, 1), (2, 1, 2)],
        )
        assert dijkstra_distances(g, 0) == {2: 1, 1: 3}

    def test_cycle_self_distance_weighted(self):
        g = graph_from_edges(
            {0: "a", 1: "b"}, [(0, 1, 2.5), (1, 0, 1.5)]
        )
        d = dijkstra_distances(g, 0)
        assert d[0] == 4.0

    def test_dispatch_matches_bfs_on_unit_graphs(self):
        g = erdos_renyi_graph(30, 80, seed=1)
        for source in list(g.nodes())[:10]:
            assert single_source_distances(g, source) == dijkstra_distances(
                g, source
            )


class TestReachability:
    def test_reachable_from(self):
        g = line_graph()
        assert reachable_from(g, 0) == {1, 2, 3}
        assert reachable_from(g, 3) == set()

    def test_connected_component_ignores_direction(self):
        g = line_graph()
        assert connected_component(g, 3) == {0, 1, 2, 3}


@given(st.integers(0, 1_000_000))
@settings(max_examples=25, deadline=None)
def test_bfs_equals_dijkstra_property(seed):
    """Property: on unit-weight random graphs BFS == Dijkstra everywhere."""
    rng = random.Random(seed)
    g = erdos_renyi_graph(rng.randint(5, 25), rng.randint(5, 60), seed=seed)
    for source in g.nodes():
        assert bfs_distances(g, source) == dijkstra_distances(g, source)
