"""Execution: bound programs replay the reference interpreter exactly."""

import pytest

from repro.compact import accel
from repro.engine import MatchEngine
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import citation_graph
from repro.kernel import bind_program, compile_program

NUMPY_MODES = (
    (False, True) if accel.resolve_numpy(True) is not None else (False,)
)


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


def tie_graph():
    """A dense two-level graph with many equal-score matches (tie stress)."""
    labels = {i: "ABC"[i % 3] for i in range(9)}
    edges = [
        (t, h) for t in range(9) for h in range(9)
        if t != h and (t + h) % 2
    ]
    return graph_from_edges(labels, edges)


def reference(engine, compiled, k):
    return exact(engine._build_enumerator(compiled, "topk").top_k(k))


def kernel_runs(engine, compiled, node_weight=None):
    program = compile_program(compiled)
    matcher = compiled.effective_matcher(engine.config.label_matcher)
    for use_numpy in NUMPY_MODES:
        yield use_numpy, bind_program(
            program,
            engine.store,
            matcher=matcher,
            node_weight=node_weight,
            use_numpy=use_numpy,
        )


QUERIES = (
    "A//B",           # single edge
    "A/B",            # direct axis
    "A//B[C]",        # branching twig
    "A//B//C",        # chain
    "A//*",           # wildcard fan-out
    "A[*]/B",         # wildcard + direct
    "~A//~B",         # containment matcher
    "A",              # single node, no edges
)


class TestExactEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("k", (1, 5, 1000))
    def test_kernel_matches_interpreter(self, query, k):
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile(query)
        want = reference(engine, compiled, k)
        for use_numpy, bound in kernel_runs(engine, compiled):
            assert exact(bound.run().top_k(k)) == want, (query, use_numpy)

    @pytest.mark.parametrize("query", ("A//B[C]", "A/B", "A//*"))
    def test_kernel_matches_interpreter_on_citation_graph(self, query):
        graph = citation_graph(120, num_labels=5, seed=3)
        engine = MatchEngine(graph, backend="full")
        compiled = engine.compile(query)
        want = reference(engine, compiled, 25)
        for use_numpy, bound in kernel_runs(engine, compiled):
            assert exact(bound.run().top_k(25)) == want, (query, use_numpy)

    def test_node_weights_replayed(self):
        engine = MatchEngine(
            tie_graph(), backend="full",
            node_weight=lambda node: float(node % 4),
        )
        compiled = engine.compile("A//B[C]")
        want = reference(engine, compiled, 50)
        assert any(score for score, _ in want), "weights must matter"
        for use_numpy, bound in kernel_runs(
            engine, compiled, node_weight=engine.config.node_weight
        ):
            assert exact(bound.run().top_k(50)) == want, use_numpy

    def test_empty_result_sets_agree(self):
        graph = graph_from_edges({0: "A", 1: "B", 2: "Z"}, [(0, 1)])
        engine = MatchEngine(graph, backend="full")
        compiled = engine.compile("A//Z")  # label exists, no closure row
        assert reference(engine, compiled, 5) == []
        for _, bound in kernel_runs(engine, compiled):
            assert bound.run().top_k(5) == []

    def test_scalar_and_numpy_binds_are_bit_identical(self):
        if len(NUMPY_MODES) < 2:
            pytest.skip("numpy unavailable")
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile("A//B[C]")
        runs = dict(kernel_runs(engine, compiled))
        assert runs[False].mode == "scalar"
        assert runs[True].mode == "numpy"
        assert exact(runs[False].run().top_k(1000)) == exact(
            runs[True].run().top_k(1000)
        )


class TestRunProtocol:
    def test_stats_surface_the_tier(self):
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile("A//B")
        for _, bound in kernel_runs(engine, compiled):
            run = bound.run()
            run.top_k(3)
            assert run.stats.extra["tier"] == "compiled"
            assert run.stats.extra["bind_mode"] == bound.mode
            assert run.stats.rounds >= 3

    def test_stream_is_an_iterator_over_the_same_order(self):
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile("A//B")
        (_, bound) = next(iter(kernel_runs(engine, compiled)))
        want = exact(bound.run().top_k(7))
        streamed = []
        for match in bound.run().stream():
            streamed.append(match)
            if len(streamed) == 7:
                break
        assert exact(streamed) == want

    def test_negative_k_raises(self):
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile("A//B")
        (_, bound) = next(iter(kernel_runs(engine, compiled)))
        with pytest.raises(ValueError, match="non-negative"):
            bound.run().top_k(-1)

    def test_bound_program_reports_bind_costs(self):
        engine = MatchEngine(tie_graph(), backend="full")
        compiled = engine.compile("A//B")
        for _, bound in kernel_runs(engine, compiled):
            assert bound.bind_seconds >= 0.0
            assert bound.num_candidates > 0
