"""Lowering: opcode programs, listings, and the supports() predicate."""

import pytest

from repro.kernel import (
    KERNEL_ALGORITHMS,
    KernelUnsupported,
    compile_program,
    kernel_enabled,
    supports,
)
from repro.query import compile_query


def ops_by_code(program):
    codes = {}
    for op in program.ops:
        codes.setdefault(op.code, []).append(op)
    return codes


class TestLowering:
    def test_plain_tree_opcode_counts(self):
        # 3 nodes, 2 '//' edges: SCAN x3, PROBE x2, ACCUM x3, ROOTS, PUSH.
        program = compile_program(compile_query("A//B[C]"))
        codes = ops_by_code(program)
        assert len(codes["SCAN"]) == 3
        assert len(codes["PROBE"]) == 2
        assert len(codes["ACCUM"]) == 3
        assert len(codes["ROOTS"]) == len(codes["PUSH"]) == 1
        assert "FANOUT" not in codes and "DIRECT" not in codes
        assert program.num_positions == 3
        assert program.num_ops == 10

    def test_direct_axis_emits_direct_marker(self):
        program = compile_program(compile_query("A/B"))
        codes = ops_by_code(program)
        assert len(codes["DIRECT"]) == 1
        (edge_spec,) = program.edge_specs
        assert edge_spec == (0, 1, True)

    def test_wildcards_fan_out(self):
        program = compile_program(compile_query("A//*"))
        codes = ops_by_code(program)
        assert len(codes["FANOUT"]) == 1 and len(codes["SCAN"]) == 1
        assert "alphabet fan-out" in codes["FANOUT"][0].text

    def test_containment_matcher_fans_out(self):
        program = compile_program(compile_query("~a+b//~c"))
        codes = ops_by_code(program)
        assert len(codes["FANOUT"]) == 2
        assert program.matcher_kind == "containment"

    def test_single_node_query(self):
        program = compile_program(compile_query("A"))
        assert program.num_positions == 1
        assert not program.edge_specs
        codes = ops_by_code(program)
        assert len(codes["SCAN"]) == len(codes["ACCUM"]) == 1

    def test_listing_renders_indexed_ops(self):
        program = compile_program(compile_query("A//B/C"))
        lines = program.listing().splitlines()
        assert len(lines) == program.num_ops
        assert lines[0].lstrip().startswith("0")
        assert any("DIRECT" in line for line in lines)
        assert lines[-1].split()[1] == "PUSH"

    def test_programs_are_store_independent_and_identity_keyed(self):
        compiled = compile_query("A//B")
        first, second = compile_program(compiled), compile_program(compiled)
        assert first is not second
        assert first != second  # identity equality: cache keys never alias

    def test_cyclic_patterns_are_unsupported(self):
        cyclic = compile_query("graph(a:A, b:B; a-b, b-a)")
        with pytest.raises(KernelUnsupported, match="kGPM"):
            compile_program(cyclic)


class TestSupports:
    def test_tree_topk_supported(self):
        compiled = compile_query("A//B")
        assert supports(compiled)
        for algorithm in KERNEL_ALGORITHMS:
            assert supports(compiled, algorithm)

    def test_baseline_algorithms_stay_interpreted(self):
        compiled = compile_query("A//B")
        for algorithm in ("dp-b", "dp-p", "brute-force"):
            assert not supports(compiled, algorithm)

    def test_cyclic_not_supported(self):
        assert not supports(compile_query("graph(a:A, b:B; a-b, b-a)"))

    def test_kill_switch_values(self, monkeypatch):
        for off in ("0", "false", "NO", " Off "):
            monkeypatch.setenv("REPRO_KERNEL", off)
            assert not kernel_enabled()
        for on in ("", "1", "on", "yes"):
            monkeypatch.setenv("REPRO_KERNEL", on)
            assert kernel_enabled()
        monkeypatch.delenv("REPRO_KERNEL")
        assert kernel_enabled()


# The kernel layering contract (kernel never imports engine/serving) is
# enforced by `repro lint` rule RL001 via config/layers.toml, covered by
# tests/devtools/test_layering_dag.py.
