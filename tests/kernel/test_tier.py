"""Tier selection, prepared queries, and the serving-layer caches."""

import pytest

from repro.engine import MatchEngine
from repro.graph.generators import citation_graph
from repro.kernel import TIER_COMPILED, TIER_INTERPRETED, KernelProgram
from repro.service import MatchService


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@pytest.fixture()
def engine():
    return MatchEngine(citation_graph(90, num_labels=6, seed=1), backend="full")


def hot_query(engine):
    labels = sorted(
        engine.graph.labels(),
        key=lambda lab: (-len(engine.graph.nodes_with_label(lab)), repr(lab)),
    )
    return f"{labels[0]}//{labels[1]}"


class TestPlannerTier:
    def test_tree_plans_select_the_compiled_tier(self, engine):
        plan = engine.explain(hot_query(engine), k=5)
        assert plan.tier == TIER_COMPILED
        assert any("compiled kernel" in reason for reason in plan.reasons)

    def test_describe_surfaces_the_execution_tier(self, engine):
        text = engine.explain(hot_query(engine), k=5).describe()
        assert "execution tier: compiled kernel" in text

    def test_kill_switch_forces_interpreted(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        plan = engine.explain(hot_query(engine), k=5)
        assert plan.tier == TIER_INTERPRETED
        assert any("REPRO_KERNEL" in reason for reason in plan.reasons)
        assert "execution tier: interpreted" in plan.describe()

    def test_baseline_algorithms_stay_interpreted(self, engine):
        plan = engine.explain(hot_query(engine), k=5, algorithm="dp-b")
        assert plan.tier == TIER_INTERPRETED

    def test_load_cap_forces_interpreted(self, engine, monkeypatch):
        import repro.engine.planner as planner_module

        monkeypatch.setattr(planner_module, "KERNEL_LOAD_CAP", 0)
        small = MatchEngine(
            engine.graph, backend="full", full_load_threshold=0
        )
        plan = small.explain(hot_query(engine), k=5)
        assert plan.tier == TIER_INTERPRETED
        assert any("full-load cap" in reason for reason in plan.reasons)
        # The kill-switched/capped plan still answers identically.
        assert exact(small.top_k(hot_query(engine), 5)) == exact(
            engine.top_k(hot_query(engine), 5)
        )

    def test_cyclic_plans_never_carry_a_program(self, engine):
        cyclic = "graph(a:A0, b:A1; a-b, b-a)"
        prepared = engine.prepare(cyclic, k=3)
        assert prepared.program is None


class TestPreparedQuery:
    def test_prepared_carries_the_program(self, engine):
        prepared = engine.prepare(hot_query(engine), k=5)
        assert isinstance(prepared.program, KernelProgram)
        assert prepared.plan.tier == TIER_COMPILED

    def test_prepared_answers_like_the_engine(self, engine):
        query = hot_query(engine)
        prepared = engine.prepare(query, k=5)
        assert exact(prepared.top_k()) == exact(engine.top_k(query, 5))

    def test_larger_k_replans_instead_of_truncating(self, engine):
        # Regression: top_k(k=...) above the planned k used to reuse the
        # plan chosen for the original k and silently under-deliver.
        query = hot_query(engine)
        prepared = engine.prepare(query, k=2)
        assert exact(prepared.top_k(k=8)) == exact(engine.top_k(query, 8))

    def test_smaller_k_reuses_the_plan(self, engine):
        query = hot_query(engine)
        prepared = engine.prepare(query, k=8)
        assert exact(prepared.top_k(k=3)) == exact(engine.top_k(query, 3))

    def test_prepared_stream_matches_top_k(self, engine):
        query = hot_query(engine)
        prepared = engine.prepare(query, k=4)
        want = exact(engine.top_k(query, 4))
        streamed = []
        for match in prepared.stream():
            streamed.append(match)
            if len(streamed) == 4:
                break
        assert exact(streamed) == want

    def test_repeated_execution_reuses_one_binding(self, engine):
        prepared = engine.prepare(hot_query(engine), k=5)
        prepared.top_k()
        prepared.top_k()
        assert len(engine._kernel_bindings) == 1

    def test_distinct_programs_get_distinct_bindings(self, engine):
        query = hot_query(engine)
        engine.prepare(query, k=5).top_k()
        other = query.replace("//", "/")
        engine.prepare(other, k=5).top_k()
        assert len(engine._kernel_bindings) == 2


class TestServicePlanCache:
    def test_warm_plan_entries_carry_the_program(self, engine):
        graph = engine.graph
        query = hot_query(engine)
        with MatchService(graph, backend="full", max_workers=1) as service:
            cold = service.request(query, 5)
            warm = service.request(query, 5)
            assert not cold.plan_cache_hit
            entries = list(service._plans._entries.values())
            assert entries, "the plan cache must hold the compiled entry"
            _compiled, plan, program = entries[0]
            assert plan.tier == TIER_COMPILED
            assert isinstance(program, KernelProgram)
            direct = exact(MatchEngine(graph, backend="full").top_k(query, 5))
            assert exact(cold.matches) == direct
            assert exact(warm.matches) == direct

    def test_warm_hit_skips_relowering(self, engine):
        # Same DSL + k twice: the second answer must reuse the cached
        # (compiled, plan, program) triple — one engine binding total.
        graph = engine.graph
        query = hot_query(engine)
        with MatchService(
            graph, backend="full", max_workers=1, result_cache_size=0
        ) as service:
            service.request(query, 5)
            before = list(service._plans._entries.values())
            response = service.request(query, 5)
            after = list(service._plans._entries.values())
            assert response.plan_cache_hit
            assert len(after) == len(before) == 1
            assert after[0][2] is before[0][2]  # the very same program
