"""Fluent builder tests: Q / Pattern produce the same AST as the DSL."""

import pytest

from repro.exceptions import QueryError
from repro.query import GraphPattern, LabelSpec, Pattern, Q, parse


class TestQ:
    def test_matches_parsed_dsl(self):
        built = Q("A").descendant(
            Q("B").descendant("C").descendant(Q.wildcard()).child("D")
        )
        assert built.to_ast() == parse("A//B[C][*]/D")

    def test_child_of_nested_builder(self):
        assert Q("A").child(Q("B").descendant("C")).to_ast() == parse("A/B//C")

    def test_multiple_branches(self):
        assert Q("A").descendant("B").descendant("C").to_ast() == parse("A[B]//C")

    def test_star_string_is_wildcard(self):
        assert Q("A").descendant("*").to_ast() == parse("A//*")

    def test_contains(self):
        assert Q("A").descendant(Q.contains("db", "ml")).to_ast() == parse(
            "A//~db+ml"
        )

    def test_contains_needs_tokens(self):
        with pytest.raises(QueryError, match="at least one token"):
            Q.contains()

    def test_to_dsl_round_trip(self):
        built = Q("A").descendant(Q("B").child("C")).descendant("D")
        assert parse(built.to_dsl()) == built.to_ast()

    def test_bad_label_type(self):
        with pytest.raises(QueryError, match="cannot use"):
            Q(3.14)

    def test_builder_with_children_not_a_label(self):
        with pytest.raises(QueryError, match="plain node label"):
            Q.contains("a")._spec  # fine
            Pattern.from_edges({"a": Q("A").child("B")}, [])


class TestPattern:
    def test_matches_parsed_dsl(self):
        built = Pattern.from_edges(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c"), ("c", "a")],
        )
        assert built.to_ast() == parse("graph(a:A, b:B, c:C; a-b, b-c, c-a)")

    def test_integer_names_stringified(self):
        built = Pattern.from_edges({0: "A", 1: "B"}, [(0, 1)])
        assert isinstance(built.to_ast(), GraphPattern)
        assert built.to_ast().node_names() == ("0", "1")

    def test_label_specs_allowed(self):
        built = Pattern.from_edges(
            {"a": LabelSpec.contains("db"), "b": "B"}, [("a", "b")]
        )
        assert built.to_ast() == parse("graph(a:~db, b:B; a-b)")

    def test_undeclared_endpoint(self):
        with pytest.raises(QueryError, match="undeclared node 'z'"):
            Pattern.from_edges({"a": "A"}, [("a", "z")])

    def test_empty_rejected(self):
        with pytest.raises(QueryError, match="at least one node"):
            Pattern.from_edges({}, [])
