"""compile_query(): lowering, matcher selection, validation, semantics."""

import pytest

from repro.exceptions import QueryError, QuerySyntaxError
from repro.graph.query import WILDCARD, EdgeType, QueryGraph, QueryTree
from repro.query import (
    CompiledLabelMatcher,
    CompiledQuery,
    ContainsLabel,
    Pattern,
    Q,
    compile_query,
    parse,
)


class TestLowering:
    def test_dsl_to_query_tree(self):
        compiled = compile_query("A//B[C]/D")
        tree = compiled.tree
        assert tree.num_nodes == 4
        assert tree.label(tree.root) == "A"
        # Pre-order node naming: n0=A, n1=B, n2=C, n3=D.
        assert tree.label("n1") == "B"
        assert tree.edge_type("n1", "n3") is EdgeType.CHILD
        assert tree.edge_type("n0", "n1") is EdgeType.DESCENDANT

    def test_wildcard_lowered_to_sentinel(self):
        compiled = compile_query("A//*")
        assert compiled.tree.label("n1") == WILDCARD

    def test_containment_lowered_to_contains_label(self):
        compiled = compile_query("A//~db+ml")
        label = compiled.tree.label("n1")
        assert isinstance(label, ContainsLabel)
        assert label.tokens == ("db", "ml")

    def test_graph_dsl_to_query_graph(self):
        compiled = compile_query("graph(a:A, b:B, c:C; a-b, b-c, c-a)")
        assert compiled.is_cyclic
        pattern = compiled.pattern
        assert isinstance(pattern, QueryGraph)
        assert pattern.num_nodes == 3
        assert pattern.num_edges == 3
        assert pattern.label("a") == "A"

    def test_raw_query_tree_kept_as_is(self):
        tree = QueryTree({"r": "A", "x": "B"}, [("r", "x")])
        compiled = compile_query(tree)
        assert compiled.tree is tree

    def test_raw_query_graph_kept_as_is(self):
        graph = QueryGraph({0: "A", 1: "B"}, [(0, 1)])
        compiled = compile_query(graph)
        assert compiled.pattern is graph
        assert compiled.is_cyclic

    def test_builders_accepted(self):
        assert compile_query(Q("A").descendant("B")).tree.num_nodes == 2
        assert compile_query(
            Pattern.from_edges({"a": "A", "b": "B"}, [("a", "b")])
        ).is_cyclic

    def test_ast_accepted(self):
        assert compile_query(parse("A//B")).tree.num_nodes == 2

    def test_compiled_query_idempotent(self):
        compiled = compile_query("A//B")
        assert compile_query(compiled) is compiled

    def test_unsupported_type_rejected(self):
        with pytest.raises(QueryError, match="cannot compile"):
            compile_query(12345)

    def test_syntax_error_propagates(self):
        with pytest.raises(QuerySyntaxError):
            compile_query("A//")


class TestSemantics:
    def test_counters(self):
        compiled = compile_query("A//B[C][*]/D")
        assert compiled.direct_edges == 1
        assert compiled.wildcards == 1
        assert compiled.containment_nodes == 0
        assert not compiled.has_duplicate_labels
        assert not compiled.is_cyclic
        assert compiled.num_nodes == 5

    def test_duplicate_labels_detected(self):
        assert compile_query("A[B]//B").has_duplicate_labels

    def test_matcher_only_when_containment_present(self):
        assert compile_query("A//B").matcher is None
        assert isinstance(
            compile_query("A//~db").matcher, CompiledLabelMatcher
        )

    def test_matcher_kind(self):
        assert compile_query("A//B").matcher_kind == "engine-default"
        assert compile_query("A//~db").matcher_kind == "containment"

    def test_wildcard_root_rejected(self):
        with pytest.raises(QueryError, match="wildcard roots"):
            compile_query("*//A")

    def test_wildcard_root_rejected_for_raw_tree(self):
        tree = QueryTree({0: WILDCARD, 1: "A"}, [(0, 1)])
        with pytest.raises(QueryError, match="wildcard roots"):
            compile_query(tree)


class TestCompiledLabelMatcher:
    def test_contains_label_matches_token_supersets(self):
        matcher = CompiledLabelMatcher()
        label = ContainsLabel(("db",))
        assert matcher.matches(label, "db")
        assert matcher.matches(label, "db+systems")
        assert not matcher.matches(label, "systems")
        assert matcher.matches(ContainsLabel(("a", "b")), "b+a+c")

    def test_plain_labels_match_by_equality(self):
        matcher = CompiledLabelMatcher()
        assert matcher.matches("db", "db")
        # equality, NOT containment, for plain labels:
        assert not matcher.matches("db", "db+systems")

    def test_wildcard_matches_all(self):
        matcher = CompiledLabelMatcher()
        assert matcher.matches(WILDCARD, "anything")

    def test_data_labels_for(self):
        matcher = CompiledLabelMatcher()
        alphabet = ["db", "db+systems", "ml"]
        assert matcher.data_labels_for(ContainsLabel(("db",)), alphabet) == [
            "db",
            "db+systems",
        ]
        assert matcher.data_labels_for("db", alphabet) == ["db"]
        assert matcher.data_labels_for(WILDCARD, alphabet) is None


class TestRepr:
    def test_compiled_query_repr_shows_dsl(self):
        assert "A//B" in repr(compile_query("A//B"))

    def test_is_compiled_query_type(self):
        assert isinstance(compile_query("A"), CompiledQuery)
