"""The declarative layer through MatchEngine: every form, every backend.

Acceptance tests for the query-layer redesign: DSL strings, builders,
ASTs, and raw query objects all execute through ``compile_query()`` and
return identical top-k results on all five backends; ``explain()``
surfaces the compiled semantics; and the general-twig features
(wildcards, ``/`` edges, containment) run end-to-end through the engine
— note this module never imports ``repro.twig``.
"""

import pytest

from repro.engine import MatchEngine
from repro.exceptions import EngineError, QuerySyntaxError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryGraph, QueryTree
from repro.query import Pattern, Q, parse

ALL_BACKENDS = ("full", "ondemand", "hybrid", "pll", "constrained")


@pytest.fixture
def catalog_graph():
    """A small document-ish graph exercising every query feature."""
    return graph_from_edges(
        {
            "root": "catalog",
            "c1": "category",
            "c2": "category",
            "s1": "shelf",
            "p1": "product",
            "p2": "product",
            "p3": "product",
            "x1": "price",
            "x2": "price",
            "r1": "review",
            "sp": "book+special",
        },
        [
            ("root", "c1"), ("root", "c2"),
            ("c1", "s1"), ("s1", "p1"), ("c1", "p2"), ("c2", "p3"),
            ("p1", "x1"), ("p2", "x2"), ("p1", "r1"),
            ("c1", "sp"),
        ],
    )


def _signature(matches):
    """Byte-identical comparison key: scores + normalized assignments."""
    return [
        (m.score, sorted((str(q), str(v)) for q, v in m.assignment.items()))
        for m in matches
    ]


def _engine(graph, backend, query_for_workload=None):
    if backend == "constrained":
        workload = (query_for_workload,)
        return MatchEngine(graph, backend=backend, workload=workload)
    return MatchEngine(graph, backend=backend)


class TestEveryFormEveryBackend:
    """DSL / builder / AST / raw QueryTree agree byte-for-byte."""

    DSL = "category//product[price]"

    def _forms(self):
        builder = Q("category").descendant(Q("product").descendant("price"))
        ast = parse(self.DSL)
        raw = QueryTree(
            {"n0": "category", "n1": "product", "n2": "price"},
            [("n0", "n1"), ("n1", "n2")],
        )
        return {"dsl": self.DSL, "builder": builder, "ast": ast, "raw": raw}

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_identical_results_across_forms(self, catalog_graph, backend):
        forms = self._forms()
        workload = forms["raw"]
        engine = _engine(catalog_graph, backend, workload)
        signatures = {
            name: _signature(engine.top_k(query, k=10))
            for name, query in forms.items()
        }
        baseline = signatures["dsl"]
        assert baseline, "expected matches in the fixture graph"
        for name, signature in signatures.items():
            assert signature == baseline, f"{name} diverged on {backend}"

    def test_identical_results_across_backends(self, catalog_graph):
        forms = self._forms()
        per_backend = [
            _signature(
                _engine(catalog_graph, backend, forms["raw"]).top_k(
                    forms["dsl"], k=10
                )
            )
            for backend in ALL_BACKENDS
        ]
        for signature in per_backend[1:]:
            assert signature == per_backend[0]

    @pytest.mark.parametrize(
        "algorithm", ["dp-b", "dp-p", "topk", "topk-en", "brute-force"]
    )
    def test_all_algorithms_on_dsl(self, catalog_graph, algorithm):
        engine = MatchEngine(catalog_graph, backend="full")
        scores = [
            m.score for m in engine.top_k(self.DSL, k=10, algorithm=algorithm)
        ]
        auto = [m.score for m in engine.top_k(self.DSL, k=10)]
        assert scores == auto


class TestGeneralTwigThroughEngine:
    """Section 5 features end-to-end without touching repro.twig."""

    @pytest.mark.parametrize("backend", ("full", "ondemand", "hybrid", "pll"))
    def test_direct_edge_semantics(self, catalog_graph, backend):
        engine = MatchEngine(catalog_graph, backend=backend)
        anywhere = engine.top_k("category//product", k=10)
        direct = engine.top_k("category/product", k=10)
        # p1 sits under a shelf: reachable by //, not by /.
        assert {m.assignment["n1"] for m in anywhere} == {"p1", "p2", "p3"}
        assert {m.assignment["n1"] for m in direct} == {"p2", "p3"}

    def test_wildcard_node(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        matches = engine.top_k("category//*[price]", k=20)
        wild = {m.assignment["n1"] for m in matches}
        assert "s1" in wild  # a shelf also has a price below it
        assert "p1" in wild

    def test_containment(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        matches = engine.top_k("catalog//~book", k=10)
        assert {m.assignment["n1"] for m in matches} == {"sp"}
        both = engine.top_k("catalog//~book+special", k=10)
        assert {m.assignment["n1"] for m in both} == {"sp"}
        nothing = engine.top_k("catalog//~book+missing", k=10)
        assert nothing == []

    def test_duplicate_labels(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        matches = engine.top_k("catalog[category]//category", k=10)
        pairs = {
            (m.assignment["n1"], m.assignment["n2"]) for m in matches
        }
        # both orders of the two categories appear
        assert ("c1", "c2") in pairs and ("c2", "c1") in pairs

    def test_brute_force_agrees_on_general_features(self, catalog_graph):
        engine = MatchEngine(catalog_graph, backend="full")
        for dsl in ("category/product", "category//*[price]", "catalog//~book"):
            lazy = _signature(engine.top_k(dsl, k=5, algorithm="topk-en"))
            oracle = _signature(engine.top_k(dsl, k=5, algorithm="brute-force"))
            assert [s for s, _ in lazy] == [s for s, _ in oracle], dsl


class TestCyclicThroughEngine:
    def test_graph_dsl_routes_to_kgpm(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        matches = engine.top_k(
            "graph(a:category, b:product, c:price; a-b, b-c, c-a)", k=3
        )
        assert matches
        assert set(matches[0].assignment) == {"a", "b", "c"}

    def test_forms_agree(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        dsl = "graph(a:category, b:product; a-b)"
        built = Pattern.from_edges(
            {"a": "category", "b": "product"}, [("a", "b")]
        )
        raw = QueryGraph({"a": "category", "b": "product"}, [("a", "b")])
        signatures = [
            _signature(engine.top_k(q, k=5)) for q in (dsl, built, raw)
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_mtree_variants_agree(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        dsl = "graph(a:category, b:product, c:price; a-b, b-c, c-a)"
        plus = engine.top_k(dsl, k=3)
        base = engine.top_k(dsl, k=3, algorithm="mtree")
        assert [m.score for m in plus] == [m.score for m in base]

    def test_stream_rejected_for_cyclic(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        with pytest.raises(EngineError, match="do not stream"):
            engine.stream("graph(a:category, b:product; a-b)")

    def test_engine_for_rejected_for_cyclic(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        with pytest.raises(EngineError, match="no standalone enumerator"):
            engine.engine_for("graph(a:category, b:product; a-b)")

    def test_kgpm_engine_reused_across_queries(self, catalog_graph):
        """Repeated cyclic queries reuse one cached KGPMEngine instead of
        re-copying the graph per call."""
        engine = MatchEngine(catalog_graph)
        engine.top_k("graph(a:category, b:product; a-b)", k=2)
        first = dict(engine._kgpm_engines)
        engine.top_k("graph(a:category, b:price; a-b)", k=2)
        assert dict(engine._kgpm_engines) == first  # same instance, no rebuild

    def test_cyclic_containment_matcher_applied(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        matches = engine.top_k("graph(a:category, b:~book; a-b)", k=5)
        assert {m.assignment["b"] for m in matches} == {"sp"}

    def test_tree_algorithm_rejected_for_cyclic(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        with pytest.raises(ValueError, match="cannot execute a cyclic"):
            engine.top_k("graph(a:category, b:product; a-b)", k=2,
                         algorithm="dp-p")

    def test_cyclic_algorithm_rejected_for_tree(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        with pytest.raises(ValueError, match="only applies to cyclic"):
            engine.top_k("category//product", k=2, algorithm="mtree+")


class TestConstrainedContainment:
    def test_constrained_workload_with_containment(self, catalog_graph):
        """A compiled containment query can BE the constrained workload."""
        from repro.query import compile_query

        compiled = compile_query("catalog//~book")
        engine = MatchEngine(
            catalog_graph, backend="constrained", workload=(compiled.tree,)
        )
        matches = engine.top_k(compiled, k=5)
        assert {m.assignment["n1"] for m in matches} == {"sp"}
        full = MatchEngine(catalog_graph, backend="full").top_k(
            "catalog//~book", k=5
        )
        assert _signature(matches) == _signature(full)


class TestExplainSemantics:
    def test_tree_semantics_surfaced(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        plan = engine.explain("category//*[price]/review", k=4)
        assert plan.cyclic is False
        assert plan.direct_edges == 1
        assert plan.wildcards == 1
        assert plan.matcher_kind == "equality"
        assert plan.dsl == "category//*[price]/review"
        described = plan.describe()
        assert "semantics: tree" in described
        assert "direct edges=1" in described

    def test_containment_matcher_surfaced(self, catalog_graph):
        plan = MatchEngine(catalog_graph).explain("catalog//~book", k=2)
        assert plan.matcher_kind == "containment"

    def test_cyclic_semantics_surfaced(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        plan = engine.explain(
            "graph(a:category, b:product, c:price; a-b, b-c, c-a)", k=2
        )
        assert plan.cyclic is True
        assert plan.algorithm == "mtree+"
        assert "cyclic pattern" in plan.describe()

    def test_plan_algorithm_matches_execution_for_dsl(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        stream = engine.stream("category//product")
        assert stream.plan.algorithm == engine.explain("category//product").algorithm


class TestStreamsAndBatch:
    def test_stream_accepts_dsl(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        stream = engine.stream("category//product")
        first = stream.take(2)
        rest = stream.take(10)
        assert len(first) == 2
        all_at_once = engine.top_k("category//product", k=12)
        assert [m.score for m in first + rest] == [m.score for m in all_at_once]

    def test_batch_mixes_forms(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        raw = QueryTree({"a": "category", "b": "product"}, [("a", "b")])
        results = engine.batch(
            ["category//product", Q("category").descendant("product"), raw], k=5
        )
        assert _signature(results[0]) == _signature(results[1])
        assert [m.score for m in results[0]] == [m.score for m in results[2]]

    def test_syntax_error_propagates_from_engine(self, catalog_graph):
        engine = MatchEngine(catalog_graph)
        with pytest.raises(QuerySyntaxError):
            engine.top_k("category//", k=3)
