"""Tokenizer and recursive-descent parser tests for the query DSL."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.graph.query import EdgeType
from repro.query import (
    GraphPattern,
    LabelKind,
    LabelSpec,
    PatternEdge,
    PatternNode,
    TokenKind,
    TreePattern,
    parse,
    tokenize,
)


class TestLexer:
    def test_simple_tokens(self):
        kinds = [t.kind for t in tokenize("A//B[C]/D")]
        assert kinds == [
            TokenKind.NAME,
            TokenKind.DSLASH,
            TokenKind.NAME,
            TokenKind.LBRACKET,
            TokenKind.NAME,
            TokenKind.RBRACKET,
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.END,
        ]

    def test_positions_point_into_source(self):
        tokens = tokenize("A//B")
        assert [t.pos for t in tokens] == [0, 1, 3, 4]

    def test_escaped_label(self):
        token = tokenize("{hello world!}")[0]
        assert token.kind is TokenKind.NAME
        assert token.text == "hello world!"
        assert token.escaped

    def test_whitespace_skipped(self):
        assert len(tokenize("  A  //  B  ")) == 4  # A, //, B, END

    def test_unterminated_escape(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokenize("{oops")

    def test_empty_escape(self):
        with pytest.raises(QuerySyntaxError, match="empty"):
            tokenize("{}")

    def test_illegal_character_position(self):
        with pytest.raises(QuerySyntaxError) as err:
            tokenize("AB@C")
        assert err.value.position == 2
        assert "^" in str(err.value)


class TestTreeParsing:
    def test_single_node(self):
        assert parse("A") == TreePattern(PatternNode(LabelSpec.label("A")))

    def test_descendant_chain(self):
        ast = parse("A//B")
        assert ast == TreePattern(
            PatternNode(
                LabelSpec.label("A"),
                (
                    PatternEdge(
                        EdgeType.DESCENDANT, PatternNode(LabelSpec.label("B"))
                    ),
                ),
            )
        )

    def test_child_axis(self):
        ast = parse("A/B")
        assert ast.root.children[0].axis is EdgeType.CHILD

    def test_predicates_then_continuation_order(self):
        ast = parse("A//B[C][*]/D")
        b = ast.root.children[0].child
        specs = [e.child.spec for e in b.children]
        assert specs[0] == LabelSpec.label("C")
        assert specs[1] == LabelSpec.wildcard()
        assert specs[2] == LabelSpec.label("D")
        assert [e.axis for e in b.children] == [
            EdgeType.DESCENDANT,
            EdgeType.DESCENDANT,
            EdgeType.CHILD,
        ]

    def test_predicate_with_explicit_axis(self):
        ast = parse("A[/B]")
        assert ast.root.children[0].axis is EdgeType.CHILD

    def test_nested_predicates(self):
        ast = parse("A[B[C]//D]")
        b = ast.root.children[0].child
        assert len(b.children) == 2

    def test_containment_tokens(self):
        ast = parse("A//~db+systems+x")
        spec = ast.root.children[0].child.spec
        assert spec.kind is LabelKind.CONTAINS
        assert spec.tokens == ("db", "systems", "x")

    def test_escaped_label_in_tree(self):
        ast = parse("{my label}//B")
        assert ast.root.spec == LabelSpec.label("my label")

    def test_escaped_graph_is_a_label(self):
        """``{graph}(...)`` never triggers the graph form."""
        ast = parse("{graph}//B")
        assert isinstance(ast, TreePattern)
        assert ast.root.spec.text == "graph"

    def test_graph_without_paren_is_a_label(self):
        ast = parse("graph//B")
        assert isinstance(ast, TreePattern)


class TestGraphParsing:
    def test_triangle(self):
        ast = parse("graph(a:A, b:B, c:C; a-b, b-c, c-a)")
        assert isinstance(ast, GraphPattern)
        assert ast.node_names() == ("a", "b", "c")
        assert ast.edges == (("a", "b"), ("b", "c"), ("c", "a"))

    def test_single_node_no_edges(self):
        ast = parse("graph(a:A)")
        assert ast.edges == ()

    def test_containment_label_in_graph(self):
        ast = parse("graph(a:~db+ml, b:B; a-b)")
        assert ast.nodes[0][1].kind is LabelKind.CONTAINS

    def test_duplicate_node_rejected(self):
        with pytest.raises(QuerySyntaxError, match="declared twice"):
            parse("graph(a:A, a:B; a-a)")

    def test_undeclared_edge_endpoint(self):
        with pytest.raises(QuerySyntaxError, match="undeclared node 'z'"):
            parse("graph(a:A, b:B; a-z)")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "A//",
            "//A",
            "A[[B]",
            "A[B",
            "A]",
            "A//B]",
            "A B",
            "A++B",
            "~",
            "A//~",
            "A//~db+",
            "graph(",
            "graph(a)",
            "graph(a:A,)",
            "graph(a:A; a)",
            "graph(a:A; a-)",
        ],
    )
    def test_malformed_raises_syntax_error(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)

    def test_caret_points_at_offender(self):
        with pytest.raises(QuerySyntaxError) as err:
            parse("A//B[[C]")
        rendered = str(err.value)
        lines = rendered.splitlines()
        assert lines[0] == "A//B[[C]"
        assert lines[1].index("^") == 5

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse(42)
