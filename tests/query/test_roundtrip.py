"""Round-trip property: ``parse(to_dsl(q)) == q`` for every query form."""

import random

import pytest

from repro.graph.query import EdgeType, QueryGraph, QueryTree
from repro.query import Pattern, Q, compile_query, parse, to_dsl

TREE_CASES = [
    "A",
    "A//B",
    "A/B",
    "A//B//C",
    "A[B]//C",
    "A[/B]//C",
    "A//B[C][*]/D",
    "A[B[C]//D]//E",
    "A//*[B][C]",
    "A//~db",
    "A//~db+systems",
    "~x//~y+z",
    "{weird label!}//B",
    "A//{a+b}",
    "A[{hi there}]//B",
    "graph(a:A, b:B; a-b)",
    "graph(a:A, b:B, c:C; a-b, b-c, c-a)",
    "graph(a:~db+ml, b:*; a-b)",
    "graph({n one}:A, b:{l two}; {n one}-b)",
    "graph(a:A)",
]


class TestDslRoundTrip:
    @pytest.mark.parametrize("text", TREE_CASES)
    def test_parse_to_dsl_parse(self, text):
        ast = parse(text)
        assert parse(to_dsl(ast)) == ast

    @pytest.mark.parametrize("text", TREE_CASES)
    def test_canonical_form_is_fixpoint(self, text):
        """to_dsl(parse(to_dsl(parse(s)))) == to_dsl(parse(s))."""
        canonical = to_dsl(parse(text))
        assert to_dsl(parse(canonical)) == canonical


class TestBuilderRoundTrip:
    def test_q_round_trip(self):
        built = Q("A").descendant(Q("B").descendant("C").child("D"))
        assert parse(built.to_dsl()) == built.to_ast()

    def test_pattern_round_trip(self):
        built = Pattern.from_edges(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c"), ("c", "a")]
        )
        assert parse(built.to_dsl()) == built.to_ast()


class TestRawObjectRoundTrip:
    def test_query_tree_round_trip_structure(self):
        """A hand-built tree's DSL re-compiles to an isomorphic tree."""
        tree = QueryTree(
            {"r": "A", "x": "B", "y": "C", "z": "D"},
            [("r", "x"), ("x", "y", EdgeType.CHILD), ("r", "z")],
        )
        recompiled = compile_query(to_dsl(tree)).tree
        assert recompiled.num_nodes == tree.num_nodes
        labels = sorted(str(recompiled.label(u)) for u in recompiled.nodes())
        assert labels == sorted(str(tree.label(u)) for u in tree.nodes())
        direct = [
            (str(recompiled.label(p)), str(recompiled.label(c)))
            for p, c, e in recompiled.edges()
            if e is EdgeType.CHILD
        ]
        assert direct == [("B", "C")]

    def test_query_graph_round_trip_structure(self):
        graph = QueryGraph(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c"), ("c", "a")],
        )
        recompiled = compile_query(to_dsl(graph)).pattern
        assert recompiled.num_nodes == 3
        assert recompiled.num_edges == 3
        assert {recompiled.label(u) for u in recompiled.nodes()} == {"A", "B", "C"}

    def test_compiled_to_dsl_reparses_to_same_ast(self):
        for text in TREE_CASES:
            compiled = compile_query(text)
            assert parse(compiled.to_dsl()) == compiled.ast


class TestRandomizedRoundTrip:
    def _random_tree_ast(self, rng: random.Random):
        labels = [f"L{i}" for i in range(8)] + ["weird one", "x+y"]
        size = rng.randint(1, 7)

        def build(budget):
            spec = rng.choice(labels)
            q = Q(spec)
            while budget[0] > 0 and rng.random() < 0.6:
                budget[0] -= 1
                child = build(budget)
                if rng.random() < 0.5:
                    q.child(child)
                else:
                    q.descendant(child)
            return q

        return build([size - 1]).to_ast()

    def test_random_trees(self):
        rng = random.Random(7)
        for _ in range(100):
            ast = self._random_tree_ast(rng)
            assert parse(to_dsl(ast)) == ast

    def test_workload_generated_trees(self):
        """Generated workload queries emit DSL that re-parses cleanly."""
        from repro.closure.transitive import TransitiveClosure
        from repro.graph.generators import citation_graph
        from repro.workloads.queries import query_set_with_dsl

        graph = citation_graph(120, num_labels=20, seed=3)
        closure = TransitiveClosure(graph)
        for tree, text in query_set_with_dsl(closure, size=5, count=5, seed=1):
            recompiled = compile_query(text).tree
            assert recompiled.num_nodes == tree.num_nodes
            assert parse(text) == parse(to_dsl(recompiled))
