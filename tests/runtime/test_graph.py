"""Tests for run-time graph identification and pruning."""

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.exceptions import MatchingError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import EdgeType, QueryTree
from repro.runtime.graph import assignment_score, build_runtime_graph
from repro.twig.semantics import ContainmentMatcher


def make_store(graph, block_size=4):
    return ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)


class TestFigure4:
    def test_slots_and_candidates(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        assert gr.viable_candidates("u1") == {"v1"}
        assert gr.viable_candidates("u3") == {"v3", "v4", "v5", "v6"}
        assert gr.viable_candidates("u4") == {"v7"}
        assert gr.roots() == ["v1"]
        slot = dict(gr.slot("u1", "v1", "u3"))
        assert slot == {"v3": 1, "v4": 1, "v5": 1, "v6": 1}

    def test_raw_statistics(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        # Raw edges: a->b (1), a->c (4), c->d (4) = 9.
        assert gr.raw_num_edges == 9
        assert gr.num_edges == 9  # nothing pruned here
        assert gr.raw_num_nodes == 7
        assert gr.max_slot_size() == 4


class TestPruning:
    def test_bottom_up_prunes_childless_candidates(self):
        # b2 has no c-child, so (u_b, b2) must be pruned, and with it the
        # root a2 that only reaches b2.
        g = graph_from_edges(
            {"a1": "a", "a2": "a", "b1": "b", "b2": "b", "c1": "c"},
            [("a1", "b1"), ("a2", "b2"), ("b1", "c1")],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        gr = build_runtime_graph(make_store(g), q)
        assert gr.viable_candidates(1) == {"b1"}
        assert gr.roots() == ["a1"]
        assert gr.raw_num_edges > gr.num_edges

    def test_top_down_prunes_orphans(self):
        # c2 is only reachable from b2, which is not reachable from any
        # root: top-down pruning must drop both.
        g = graph_from_edges(
            {"a1": "a", "b1": "b", "b2": "b", "c1": "c", "c2": "c"},
            [("a1", "b1"), ("b1", "c1"), ("b2", "c2")],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        gr = build_runtime_graph(make_store(g), q)
        assert gr.viable_candidates(1) == {"b1"}
        assert gr.viable_candidates(2) == {"c1"}

    def test_prune_disabled_keeps_raw(self):
        g = graph_from_edges(
            {"a1": "a", "b1": "b", "b2": "b", "c1": "c"},
            [("a1", "b1"), ("a1", "b2"), ("b1", "c1")],
        )
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        gr = build_runtime_graph(make_store(g), q, prune=False)
        assert "b2" in gr.viable_candidates(1)

    def test_empty_result_when_unmatchable(self):
        g = graph_from_edges({"a1": "a", "b1": "b"}, [("a1", "b1")])
        q = QueryTree({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        gr = build_runtime_graph(make_store(g), q)
        assert gr.roots() == []
        assert gr.num_nodes == 0


class TestEdgeSemantics:
    def test_child_edges_restrict_to_direct(self, figure4_graph):
        store = make_store(figure4_graph)
        q = QueryTree({0: "a", 1: "d"}, [(0, 1, EdgeType.CHILD)])
        gr = build_runtime_graph(store, q)
        assert gr.roots() == []  # a reaches d only via 2-hop paths
        q2 = QueryTree({0: "a", 1: "d"}, [(0, 1, EdgeType.DESCENDANT)])
        gr2 = build_runtime_graph(store, q2)
        assert gr2.roots() == ["v1"]

    def test_wildcard_child(self, figure4_graph):
        from repro.graph.query import WILDCARD

        store = make_store(figure4_graph)
        q = QueryTree({0: "c", 1: WILDCARD}, [(0, 1)])
        gr = build_runtime_graph(store, q)
        # Every c-node reaches v7 (label d); wildcard admits it.
        assert gr.viable_candidates(1) == {"v7"}

    def test_single_node_query(self, figure4_graph):
        store = make_store(figure4_graph)
        q = QueryTree({0: "c"}, [])
        gr = build_runtime_graph(store, q)
        assert gr.viable_candidates(0) == {"v3", "v4", "v5", "v6"}

    def test_containment_matcher(self):
        g = graph_from_edges(
            {"x": "red+blue", "y": "blue", "z": "red"},
            [("x", "y"), ("x", "z")],
        )
        q = QueryTree({0: "red", 1: "blue"}, [(0, 1)])
        gr = build_runtime_graph(make_store(g), q, matcher=ContainmentMatcher())
        # Root label "red" is contained in "red+blue" (x) and "red" (z);
        # only x has a blue-containing successor.
        assert gr.roots() == ["x"]
        assert gr.viable_candidates(1) == {"y"}


class TestAssignmentScore:
    def test_valid_assignment(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        score = assignment_score(
            store,
            figure4_query,
            {"u1": "v1", "u2": "v2", "u3": "v5", "u4": "v7"},
        )
        assert score == 1 + 1 + 1

    def test_unreachable_assignment_rejected(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        with pytest.raises(MatchingError):
            assignment_score(
                store,
                figure4_query,
                {"u1": "v2", "u2": "v1", "u3": "v5", "u4": "v7"},
            )

    def test_child_edge_checked(self, figure4_graph):
        store = make_store(figure4_graph)
        q = QueryTree({0: "a", 1: "d"}, [(0, 1, EdgeType.CHILD)])
        with pytest.raises(MatchingError):
            assignment_score(store, q, {0: "v1", 1: "v7"})
