"""Tests for the L/H slot structures (Section 3.3)."""

import random

import pytest
from hypothesis import given, settings

from repro.runtime.slots import DynamicSlot, ExclusionChain, StaticSlot
from tests.strategies import keyed_entries, slot_keys


def entries(*keys):
    return [(k, f"n{i}") for i, k in enumerate(keys)]


class TestStaticSlot:
    def test_init_extracts_minimum(self):
        slot = StaticSlot(entries(5, 2, 9, 4))
        assert slot.min() == (2, "n1")
        assert len(slot.extracted) == 1

    def test_empty(self):
        slot = StaticSlot([])
        assert slot.min() is None
        assert slot.ith(1) is None
        assert not slot

    def test_rank_two_peeks_without_extraction(self):
        slot = StaticSlot(entries(5, 2, 9, 4))
        assert slot.ith(2) == (4, "n3")
        # Peek must not grow H (the O(1) Case-2 path).
        assert len(slot.extracted) == 1
        # And it is repeatable.
        assert slot.ith(2) == (4, "n3")

    def test_deep_rank_extracts(self):
        slot = StaticSlot(entries(5, 2, 9, 4))
        assert slot.ith(3) == (5, "n0")
        assert len(slot.extracted) >= 3
        assert slot.ith(4) == (9, "n2")
        assert slot.ith(5) is None

    def test_ranks_are_sorted(self):
        keys = [7, 1, 3, 3, 9, 2, 8]
        slot = StaticSlot(entries(*keys))
        got = [slot.ith(r)[0] for r in range(1, len(keys) + 1)]
        assert got == sorted(keys)

    def test_invalid_rank(self):
        slot = StaticSlot(entries(1))
        with pytest.raises(ValueError):
            slot.ith(0)

    def test_materialize_rank(self):
        slot = StaticSlot(entries(5, 2, 9, 4))
        slot.materialize_rank(3)
        assert [k for k, _ in slot.extracted] == [2, 4, 5]

    def test_tie_breaking_deterministic(self):
        slot_a = StaticSlot(entries(1, 1, 1))
        slot_b = StaticSlot(entries(1, 1, 1))
        ranks_a = [slot_a.ith(r) for r in (1, 2, 3)]
        ranks_b = [slot_b.ith(r) for r in (1, 2, 3)]
        assert ranks_a == ranks_b

    @given(slot_keys(max_key=50, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_rank_sequence_matches_sorted_property(self, keys):
        slot = StaticSlot(entries(*keys))
        got = [slot.ith(r)[0] for r in range(1, len(keys) + 1)]
        assert got == sorted(keys)
        assert slot.ith(len(keys) + 1) is None


class TestExclusionChain:
    def test_empty_chain(self):
        assert ExclusionChain.length(None) == 0
        assert not ExclusionChain.contains(None, "x")
        assert list(ExclusionChain.iterate(None)) == []

    def test_extension_shares_structure(self):
        c1 = ExclusionChain.extend(None, "a")
        c2 = ExclusionChain.extend(c1, "b")
        c3 = ExclusionChain.extend(c1, "c")  # branch off c1
        assert ExclusionChain.contains(c2, "a")
        assert ExclusionChain.contains(c2, "b")
        assert not ExclusionChain.contains(c2, "c")
        assert ExclusionChain.contains(c3, "c")
        assert ExclusionChain.length(c2) == 2
        assert list(ExclusionChain.iterate(c2)) == ["b", "a"]


class TestDynamicSlot:
    def test_insert_and_min(self):
        slot = DynamicSlot()
        assert slot.min() is None
        slot.insert(5, "a")
        slot.insert(2, "b")
        assert slot.min() == (2, "b")
        assert len(slot) == 2

    def test_duplicate_insert_rejected(self):
        slot = DynamicSlot()
        assert slot.insert(5, "a")
        assert not slot.insert(3, "a")
        assert slot.min() == (5, "a")
        assert len(slot) == 1

    def test_version_increments(self):
        slot = DynamicSlot()
        v0 = slot.version
        slot.insert(1, "a")
        assert slot.version == v0 + 1
        slot.insert(1, "a")  # duplicate: no version bump
        assert slot.version == v0 + 1

    def test_best_excluding(self):
        slot = DynamicSlot()
        slot.insert(1, "a")
        slot.insert(2, "b")
        slot.insert(3, "c")
        chain = ExclusionChain.extend(None, "a")
        assert slot.best_excluding(chain) == (2, "b")
        chain = ExclusionChain.extend(chain, "b")
        assert slot.best_excluding(chain) == (3, "c")
        chain = ExclusionChain.extend(chain, "c")
        assert slot.best_excluding(chain) is None

    def test_best_excluding_empty_chain(self):
        slot = DynamicSlot()
        slot.insert(4, "x")
        assert slot.best_excluding(None) == (4, "x")

    def test_entries_sorted(self):
        slot = DynamicSlot()
        for key, node in [(5, "a"), (1, "b"), (3, "c")]:
            slot.insert(key, node)
        assert [k for k, _ in slot.entries()] == [1, 3, 5]

    def test_contains(self):
        slot = DynamicSlot()
        slot.insert(1, "a")
        assert "a" in slot
        assert "b" not in slot

    @given(keyed_entries(max_key=20, max_node=10, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_implementation(self, pairs):
        """Property: best_excluding == min over a plain filtered dict."""
        slot = DynamicSlot()
        reference: dict[int, int] = {}
        for key, node in pairs:
            if slot.insert(key, node):
                reference[node] = key
        rng = random.Random(42)
        excluded_nodes = rng.sample(
            sorted(reference), k=min(len(reference), 3)
        )
        chain = None
        for node in excluded_nodes:
            chain = ExclusionChain.extend(chain, node)
        got = slot.best_excluding(chain)
        remaining = {n: k for n, k in reference.items() if n not in excluded_nodes}
        if not remaining:
            assert got is None
        else:
            assert got[0] == min(remaining.values())
