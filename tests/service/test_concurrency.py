"""Stress tests: one MatchService hammered from many threads.

≥8 threads mix synchronous requests, async submits, batches, cyclic
queries, and live graph updates against a single service.  Asserted
invariants:

* **No torn snapshots** — every response names the epoch it ran on, and
  all responses for the same ``(epoch, dsl, k)`` are bit-identical, no
  matter how updates interleaved.
* **Snapshot isolation** — a snapshot held across updates keeps
  answering exactly what it answered before them.
* **Counter consistency** — cache hit/miss counters add up against the
  request counts even under contention.

The whole module runs with the lock-order sanitizer armed
(``REPRO_LOCKCHECK=1``): every service/delta/engine lock is a
:class:`repro.devtools.lockcheck.CheckedLock`, so an acquisition order
inversion anywhere under this load fails the test immediately instead
of deadlocking one CI run in a thousand.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.devtools import lockcheck
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import citation_graph
from repro.service import MatchService


@pytest.fixture(autouse=True)
def _lockcheck(monkeypatch):
    monkeypatch.setenv("REPRO_LOCKCHECK", "1")
    lockcheck.reset()
    yield
    lockcheck.reset()


def canonical(matches):
    return tuple(
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    )


def test_stress_mixed_workload_across_updates():
    graph = citation_graph(150, num_labels=6, seed=7)
    labels = sorted(graph.labels())
    queries = [
        f"{labels[0]}//{labels[1]}",
        f"{labels[1]}//{labels[2]}",
        f"{labels[0]}//{labels[2]}[{labels[3]}]",
        f"{labels[2]}//{labels[4]}",
        f"{labels[0]}//*",
    ]
    service = MatchService(
        graph, backend="full", max_workers=4, max_pending=512
    )
    seen: dict[tuple, tuple] = {}  # (epoch, dsl, k) -> canonical answer
    seen_lock = threading.Lock()
    torn: list = []
    failures: list = []

    def record(response):
        if response.dsl is None:
            return
        key = (response.epoch, response.dsl, response.k)
        answer = canonical(response.matches)
        with seen_lock:
            previous = seen.setdefault(key, answer)
        if previous != answer:
            torn.append(key)

    def reader(worker: int):
        rng = random.Random(worker)
        try:
            for _ in range(40):
                query = rng.choice(queries)
                record(service.request(query, rng.choice([1, 3, 5])))
        except Exception as exc:  # noqa: BLE001 - surfaced via `failures`
            failures.append(exc)

    def submitter(worker: int):
        rng = random.Random(1000 + worker)
        try:
            futures = [
                service.submit(rng.choice(queries), rng.choice([2, 4]))
                for _ in range(25)
            ]
            for future in futures:
                record(future.result(timeout=30))
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    def batcher():
        try:
            for _ in range(8):
                answers = service.batch(queries, 3)
                assert len(answers) == len(queries)
                for matches in answers:
                    assert [m.score for m in matches] == sorted(
                        m.score for m in matches
                    )
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    def updater():
        rng = random.Random(99)
        nodes = sorted(graph.nodes())
        try:
            for step in range(5):
                service.apply_updates(
                    nodes_added={f"x{step}": labels[step % len(labels)]},
                    edges_added=[(f"x{step}", rng.choice(nodes))],
                )
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    held = service.snapshot()
    held_answers = [canonical(held.top_k(query, 5)) for query in queries]

    threads = (
        [threading.Thread(target=reader, args=(i,)) for i in range(6)]
        + [threading.Thread(target=submitter, args=(i,)) for i in range(2)]
        + [threading.Thread(target=batcher), threading.Thread(target=updater)]
    )
    assert len(threads) >= 10
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress thread hung"

    assert not failures, failures
    assert not torn, f"torn snapshots detected: {torn[:5]}"
    assert service.epoch == 5

    # Snapshot isolation: the pre-update snapshot still answers verbatim.
    assert [
        canonical(held.top_k(query, 5)) for query in queries
    ] == held_answers

    # Per-snapshot determinism, replayed after the dust settled: the
    # current snapshot must reproduce every answer recorded at its epoch.
    current = service.snapshot()
    for (epoch, dsl, k), answer in seen.items():
        if epoch == current.epoch:
            assert canonical(current.top_k(dsl, k)) == answer

    stats = service.statistics()
    rc = stats["result_cache"]
    pc = stats["plan_cache"]
    assert rc["lookups"] == rc["hits"] + rc["misses"]
    assert pc["lookups"] == pc["hits"] + pc["misses"]
    assert rc["lookups"] == stats["requests"] - stats["uncacheable_requests"]
    assert pc["lookups"] == rc["misses"]
    assert stats["updates_applied"] == 5
    assert stats["requests"] >= 6 * 40 + 2 * 25 + 8 * len(queries)
    service.close()


def test_concurrent_first_cyclic_query_builds_kgpm_once():
    """8 threads race the engine's lazy kGPM cache population."""
    graph = graph_from_edges(
        {"x0": "A", "x1": "A", "y0": "B", "z0": "C", "z1": "C"},
        [
            ("x0", "y0"), ("y0", "z0"), ("z0", "x0"),
            ("x1", "y0"), ("z1", "x1"), ("y0", "z1"),
        ],
    )
    service = MatchService(graph, backend="full", max_workers=8)
    cyclic = "graph(a:A, b:B, c:C; a-b, b-c, c-a)"
    with service:
        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(
                pool.map(lambda _: canonical(service.top_k(cyclic, 3)), range(16))
            )
    assert len(set(answers)) == 1
    engine = service.snapshot().engine
    assert len(engine._kgpm_engines) == 1


def test_concurrent_requests_on_lazy_backend():
    """The on-demand backend's internal caches stay consistent under
    concurrent population (worst case: duplicated work, never torn)."""
    graph = citation_graph(80, num_labels=5, seed=3)
    labels = sorted(graph.labels())
    queries = [f"{a}//{b}" for a in labels[:3] for b in labels[:3] if a != b]
    with MatchService(
        graph, backend="ondemand", max_workers=8, result_cache_size=0
    ) as service:
        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(
                pool.map(
                    lambda i: canonical(service.top_k(queries[i % len(queries)], 4)),
                    range(32),
                )
            )
    reference = {}
    for index, answer in enumerate(answers):
        query = queries[index % len(queries)]
        assert reference.setdefault(query, answer) == answer
