"""Unit tests for the :mod:`repro.service` serving layer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import MatchEngine
from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import citation_graph
from repro.graph.query import EdgeType, QueryTree
from repro.query.builder import Q
from repro.service import MatchService
from repro.service.cache import LRUCache, ResultCache


def two_cluster_graph():
    """Two label-disjoint clusters: A->B edges and C->D edges."""
    return graph_from_edges(
        {
            "a0": "A", "a1": "A", "b0": "B", "b1": "B",
            "c0": "C", "c1": "C", "d0": "D", "d1": "D",
        },
        [
            ("a0", "b0"), ("a0", "b1", 2), ("a1", "b1"),
            ("c0", "d0"), ("c1", "d0", 3),
        ],
    )


def scores(matches):
    return [m.score for m in matches]


class _GatedQuery(Q):
    """A query whose compilation blocks until the gate opens.

    ``compile_query`` calls ``to_ast()`` on the worker thread, so this
    deterministically parks a service worker — the lever the deadline
    and overload tests use.
    """

    def __init__(self, gate: threading.Event, dsl: str = "A//B") -> None:
        self._gate = gate
        self._dsl = dsl

    def to_ast(self):
        self._gate.wait(timeout=30)
        from repro.query.parser import parse

        return parse(self._dsl)


class TestRequests:
    def test_matches_engine_exactly(self):
        graph = two_cluster_graph()
        engine = MatchEngine(graph, backend="full")
        with MatchService(graph, backend="full") as service:
            for query in ("A//B", "C//D", "A//*"):
                assert scores(service.top_k(query, 5)) == scores(
                    engine.top_k(query, 5)
                )

    def test_result_cache_hit_on_repeat(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            first = service.request("A//B", 3)
            second = service.request("A//B", 3)
            assert not first.result_cache_hit
            assert second.result_cache_hit
            assert scores(second.matches) == scores(first.matches)
            # A different k is a different request key.
            third = service.request("A//B", 2)
            assert not third.result_cache_hit

    def test_plan_cache_hit_when_results_disabled(self):
        with MatchService(
            two_cluster_graph(), backend="full", result_cache_size=0
        ) as service:
            first = service.request("A//B", 3)
            second = service.request("A//B", 3)
            assert not first.plan_cache_hit
            assert second.plan_cache_hit
            assert not second.result_cache_hit
            assert scores(second.matches) == scores(first.matches)

    def test_equivalent_query_forms_share_cache_entries(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            service.top_k("A//B", 3)
            builder = Q("A").descendant("B")
            response = service.request(builder, 3)
            assert response.result_cache_hit

    def test_explicit_invalidation(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            service.top_k("A//B", 3)
            assert service.invalidate_results() == 1
            assert not service.request("A//B", 3).result_cache_hit
            assert service.invalidate_plans() >= 1

    def test_raw_trees_with_own_node_ids_bypass_the_cache(self):
        """Regression: two shape-identical raw QueryTrees with different
        node ids share a canonical DSL but key their assignments
        differently — neither may be served the other's answer."""
        first = QueryTree({"r": "A", "c": "B"}, [("r", "c")])
        second = QueryTree({"root": "A", "kid": "B"}, [("root", "kid")])
        with MatchService(two_cluster_graph(), backend="full") as service:
            got_first = service.request(first, 3)
            got_second = service.request(second, 3)
            assert got_first.dsl is None and got_second.dsl is None
            assert not got_second.result_cache_hit
            assert all("r" in m.assignment for m in got_first.matches)
            assert all("root" in m.assignment for m in got_second.matches)
            # A DSL request for the same shape keys its own (n0..) entry.
            dsl_response = service.request("A//B", 3)
            assert not dsl_response.result_cache_hit
            assert all("n0" in m.assignment for m in dsl_response.matches)

    def test_uncacheable_non_string_labels(self):
        graph = graph_from_edges({0: 1, 1: 2}, [(0, 1)])
        query = QueryTree({"r": 1, "c": 2}, [("r", "c")])
        with MatchService(graph, backend="full") as service:
            first = service.request(query, 3)
            second = service.request(query, 3)
            assert first.dsl is None and second.dsl is None
            assert not second.result_cache_hit
            assert service.statistics()["uncacheable_requests"] == 2
            assert scores(second.matches) == scores(first.matches)

    def test_cyclic_queries_served(self):
        graph = graph_from_edges(
            {"x": "A", "y": "B", "z": "C"},
            [("x", "y"), ("y", "z"), ("z", "x")],
        )
        with MatchService(graph, backend="full") as service:
            cyclic = "graph(a:A, b:B, c:C; a-b, b-c, c-a)"
            first = service.request(cyclic, 2)
            second = service.request(cyclic, 2)
            assert len(first.matches) == 1
            assert second.result_cache_hit

    def test_negative_k_rejected(self):
        with MatchService(two_cluster_graph()) as service:
            with pytest.raises(ValueError):
                service.top_k("A//B", -1)


class TestAsyncExecution:
    def test_submit_future_resolves(self):
        with MatchService(two_cluster_graph(), max_workers=2) as service:
            response = service.submit("A//B", 3).result(timeout=10)
            assert response.epoch == 0
            assert scores(response.matches) == scores(service.top_k("A//B", 3))

    def test_batch_preserves_order(self):
        with MatchService(two_cluster_graph(), max_workers=2) as service:
            queries = ["A//B", "C//D", "A//B[C]"]
            got = service.batch(queries, 4)
            expected = [service.top_k(query, 4) for query in queries]
            assert [scores(m) for m in got] == [scores(m) for m in expected]

    def test_deadline_exceeded_while_queued(self):
        gate = threading.Event()
        with MatchService(two_cluster_graph(), max_workers=1) as service:
            blocker = service.submit(_GatedQuery(gate), 1)
            late = service.submit("A//B", 1, deadline=0.02)
            time.sleep(0.1)  # let the deadline lapse while queued
            gate.set()
            assert len(blocker.result(timeout=10).matches) == 1
            with pytest.raises(DeadlineExceededError):
                late.result(timeout=10)
            assert service.statistics()["deadline_misses"] == 1

    def test_overload_fails_fast(self):
        gate = threading.Event()
        with MatchService(
            two_cluster_graph(), max_workers=1, max_pending=2
        ) as service:
            first = service.submit(_GatedQuery(gate), 1)   # running
            second = service.submit(_GatedQuery(gate), 1)  # queued
            with pytest.raises(ServiceOverloadedError):
                service.submit("A//B", 1)
            assert service.statistics()["overload_rejections"] == 1
            gate.set()
            first.result(timeout=10)
            second.result(timeout=10)
            # Slots were released: submitting works again.
            assert service.submit("A//B", 1).result(timeout=10).matches

    def test_cancelled_queued_future_releases_its_slot(self):
        """Regression: a cancelled still-queued future never runs its
        task, so the pending slot must be released by the done callback
        — not leaked until the service rejects everything."""
        gate = threading.Event()
        with MatchService(
            two_cluster_graph(), max_workers=1, max_pending=2
        ) as service:
            blocker = service.submit(_GatedQuery(gate), 1)  # running
            queued = service.submit(_GatedQuery(gate), 1)   # queued
            assert queued.cancel()
            # The cancelled request's slot is free again: this submit
            # must be accepted, not rejected as overloaded.
            third = service.submit("A//B", 1)
            gate.set()
            blocker.result(timeout=10)
            assert len(third.result(timeout=10).matches) == 1
            assert service.statistics()["overload_rejections"] == 0

    def test_invalid_deadline_rejected(self):
        with MatchService(two_cluster_graph()) as service:
            with pytest.raises(ServiceError):
                service.submit("A//B", 1, deadline=0)


class TestLifecycle:
    def test_closed_service_rejects_requests(self):
        service = MatchService(two_cluster_graph())
        service.close()
        with pytest.raises(ServiceClosedError):
            service.top_k("A//B", 1)
        with pytest.raises(ServiceClosedError):
            service.submit("A//B", 1)
        with pytest.raises(ServiceClosedError):
            service.apply_updates(edges_added=[("a0", "b0")])

    def test_bad_construction(self):
        with pytest.raises(ServiceError):
            MatchService(two_cluster_graph(), max_workers=0)
        with pytest.raises(ServiceError):
            MatchService(two_cluster_graph(), max_pending=0)
        with pytest.raises(ServiceError):
            MatchService(two_cluster_graph(), default_deadline=-1)
        with pytest.raises(ServiceError):
            MatchService(two_cluster_graph(), plan_cache_size=-1)
        with pytest.raises(ServiceError):
            MatchService(two_cluster_graph(), result_cache_size=-1)


class TestUpdates:
    def test_update_produces_new_epoch_and_results(self):
        graph = two_cluster_graph()
        with MatchService(graph, backend="full") as service:
            before = scores(service.top_k("A//B", 5))
            report = service.apply_updates(
                nodes_added={"b9": "B"}, edges_added=[("a0", "b9")]
            )
            assert report.epoch == 1 and service.epoch == 1
            after = scores(service.top_k("A//B", 5))
            assert len(after) == len(before) + 1

    def test_old_snapshot_keeps_answering(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            snapshot = service.snapshot()
            before = scores(snapshot.top_k("A//B", 5))
            service.apply_updates(edges_removed=[("a0", "b0")])
            # The held snapshot is immutable: same answer as before.
            assert scores(snapshot.top_k("A//B", 5)) == before
            assert len(service.top_k("A//B", 5)) == len(before) - 1

    def test_selective_invalidation_keeps_disjoint_entries(self):
        # Eager policy: the report must carry the fold's affected-label
        # signal inline (the delta path defers it to materialization).
        with MatchService(
            two_cluster_graph(), backend="full", update_policy="eager"
        ) as service:
            service.top_k("A//B", 3)
            service.top_k("C//D", 3)
            report = service.apply_updates(edges_added=[("c1", "d1")])
            assert report.incremental
            assert report.affected_labels is not None
            assert report.affected_labels <= {"C", "D"}
            assert report.results_migrated == 1  # the A//B entry
            assert report.results_dropped == 1   # the C//D entry
            assert service.request("A//B", 3).result_cache_hit
            assert not service.request("C//D", 3).result_cache_hit

    def test_rebuild_backend_flushes_results(self):
        with MatchService(
            two_cluster_graph(), backend="pll", update_policy="eager"
        ) as service:
            service.top_k("A//B", 3)
            report = service.apply_updates(edges_added=[("c1", "d1")])
            assert not report.incremental
            assert report.affected_labels is None
            assert report.results_migrated == 0
            assert report.results_dropped == 1
            assert not service.request("A//B", 3).result_cache_hit

    def test_node_additions_clear_plan_cache(self):
        with MatchService(
            two_cluster_graph(), backend="full", result_cache_size=0
        ) as service:
            service.top_k("A//B", 3)
            report = service.apply_updates(nodes_added={"b7": "B"})
            assert report.plans_cleared == 1
            assert not service.request("A//B", 3).plan_cache_hit

    def test_edge_only_updates_keep_plan_cache(self):
        with MatchService(
            two_cluster_graph(), backend="full", result_cache_size=0
        ) as service:
            service.top_k("A//B", 3)
            service.apply_updates(edges_added=[("c1", "d1")])
            assert service.request("A//B", 3).plan_cache_hit

    def test_invalid_updates_raise_service_error(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            with pytest.raises(ServiceError):
                service.apply_updates(edges_removed=[("a0", "d0")])
            with pytest.raises(ServiceError):
                service.apply_updates()
            # Failed updates must not bump the epoch.
            assert service.epoch == 0

    def test_direct_edge_queries_invalidate_on_adjacency_change(self):
        """Regression: an added edge between already-reachable nodes
        changes no closure distance, but it does change ``/`` (direct
        child) matches — the cached A/B answer must not survive."""
        graph = graph_from_edges(
            {"u": "A", "w": "C", "v": "B"}, [("u", "w"), ("w", "v")]
        )
        query = QueryTree({"r": "A", "c": "B"}, [("r", "c", EdgeType.CHILD)])
        with MatchService(
            graph, backend="full", update_policy="eager"
        ) as service:
            assert service.top_k(query, 5) == []
            report = service.apply_updates(edges_added=[("u", "v", 2)])
            # The distance u->v was already 2; adjacency still changed.
            assert {"A", "B"} <= report.affected_labels
            assert len(service.top_k(query, 5)) == 1

    def test_direct_edge_removal_with_equal_cost_detour(self):
        """Mirror regression: removing a direct edge that has an
        equal-cost indirect detour must drop the cached ``/`` match."""
        graph = graph_from_edges(
            {"u": "A", "w": "C", "v": "B"},
            [("u", "w"), ("w", "v"), ("u", "v", 2)],
        )
        query = QueryTree({"r": "A", "c": "B"}, [("r", "c", EdgeType.CHILD)])
        with MatchService(graph, backend="full") as service:
            assert len(service.top_k(query, 5)) == 1
            service.apply_updates(edges_removed=[("u", "v")])
            assert service.top_k(query, 5) == []

    def test_malformed_update_tuples_raise_service_error(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            with pytest.raises(ServiceError, match="invalid graph update"):
                service.apply_updates(edges_added=[("a0",)])
            # A 3-tuple removal (weight included) is tolerated.
            service.apply_updates(
                edges_added=[("a1", "b0", 4)],
            )
            service.apply_updates(edges_removed=[("a1", "b0", 4)])
            assert not service.snapshot().graph.has_edge("a1", "b0")

    def test_cache_hit_reports_resolved_algorithm(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            cold = service.request("A//B", 3)
            warm = service.request("A//B", 3)
            assert warm.result_cache_hit
            assert warm.algorithm == cold.algorithm != "auto"

    def test_compile_cache_skips_parsing_on_warm_requests(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            service.top_k("A//B", 3)
            service.top_k("A//B", 4)  # different k, same raw string
            stats = service.statistics()["compile_cache"]
            assert stats["hits"] == 1 and stats["misses"] == 1

    def test_custom_engine_matcher_invalidates_on_every_update(self):
        """Regression: a non-equality engine matcher maps query labels
        onto data labels the footprint cannot enumerate — cached results
        must not migrate across updates."""
        from repro.twig.semantics import LabelMatcher

        class LowercaseMatcher(LabelMatcher):
            def matches(self, query_label, data_label):
                return str(query_label).lower() == str(data_label).lower()

            def data_labels_for(self, query_label, alphabet):
                return [
                    label for label in alphabet
                    if str(label).lower() == str(query_label).lower()
                ]

        graph = graph_from_edges(
            {"u": "A", "w": "X", "v": "B"},
            [("u", "w", 2), ("w", "v", 3)],
        )
        with MatchService(
            graph, backend="full", label_matcher=LowercaseMatcher()
        ) as service:
            assert scores(service.top_k("a//b", 2)) == [5.0]
            service.apply_updates(edges_added=[("u", "v", 2)])
            assert not service.request("a//b", 2).result_cache_hit
            assert scores(service.top_k("a//b", 2)) == [2.0]

    def test_weighted_edge_additions(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            service.apply_updates(edges_added=[("a1", "b0", 4)])
            assert service.snapshot().graph.edge_weight("a1", "b0") == 4

    def test_incremental_refresh_matches_rebuild(self):
        graph = citation_graph(120, num_labels=6, seed=11)
        with MatchService(graph, backend="full") as service:
            edges = sorted(graph.edges(), key=repr)
            service.apply_updates(edges_removed=[edges[0][:2], edges[7][:2]])
            updated = service.snapshot().graph
            fresh = MatchEngine(updated, backend="full")
            labels = sorted(updated.labels())
            query = f"{labels[0]}//{labels[1]}"
            assert scores(service.top_k(query, 10)) == scores(
                fresh.top_k(query, 10)
            )


class TestStatistics:
    def test_failed_requests_keep_counters_consistent(self):
        from repro.exceptions import QuerySyntaxError

        with MatchService(two_cluster_graph(), backend="full") as service:
            with pytest.raises(QuerySyntaxError):
                service.top_k("A//[", 3)
            with pytest.raises(ValueError):
                service.top_k("A//B", -1)
            service.top_k("A//B", 3)
            stats = service.statistics()
            # Failed requests never reached the pipeline: the identity
            # the stress suite asserts holds exactly.
            assert stats["requests"] == 1
            assert stats["result_cache"]["lookups"] == (
                stats["requests"] - stats["uncacheable_requests"]
            )

    def test_counter_identities(self):
        with MatchService(two_cluster_graph(), backend="full") as service:
            for _ in range(3):
                service.top_k("A//B", 3)
            service.top_k("C//D", 3)
            stats = service.statistics()
            rc = stats["result_cache"]
            pc = stats["plan_cache"]
            assert rc["lookups"] == rc["hits"] + rc["misses"]
            assert rc["lookups"] == (
                stats["requests"] - stats["uncacheable_requests"]
            )
            # The plan cache is only consulted on result misses.
            assert pc["lookups"] == rc["misses"]
            assert rc["hits"] == 2


class TestCachePrimitives:
    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b" (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disabled_caches(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        results = ResultCache(0)
        results.store(0, "k", (1,), frozenset())
        assert results.lookup(0, "k") is None

    def test_result_cache_epoch_isolation(self):
        cache = ResultCache(8)
        cache.store(0, "q", (1, 2), frozenset({"A"}), algorithm="topk-en")
        assert cache.lookup(1, "q") is None
        migrated, dropped = cache.advance(0, 1, frozenset({"Z"}))
        assert (migrated, dropped) == (1, 0)
        entry = cache.lookup(1, "q")
        assert entry.matches == (1, 2)
        assert entry.algorithm == "topk-en"
        assert cache.lookup(0, "q") is None

    def test_result_cache_advance_drops_affected_and_unknown(self):
        cache = ResultCache(8)
        cache.store(0, "affected", (1,), frozenset({"A"}))
        cache.store(0, "safe", (2,), frozenset({"B"}))
        cache.store(0, "unknown", (3,), None)
        migrated, dropped = cache.advance(0, 1, frozenset({"A"}))
        assert (migrated, dropped) == (1, 2)
        assert cache.lookup(1, "safe").matches == (2,)
        assert cache.lookup(1, "affected") is None
        assert cache.lookup(1, "unknown") is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(-1)
        with pytest.raises(ValueError):
            ResultCache(-1)
