"""MatchService write path: delta overlay, WAL recovery, compaction.

The acceptance contract of the write-ahead overlay: a delta-path update
is deferred but *never* observable as staleness (the first read folds
it), a crash at any point between append and compaction loses nothing
that was acknowledged, and a compaction swaps in a new ``.ridx``
generation the next cold start boots from directly.
"""

from __future__ import annotations

import pytest

from repro.delta import CompactionPolicy, scan_wal
from repro.engine import MatchEngine
from repro.exceptions import ServiceError
from repro.graph.generators import citation_graph
from repro.service import MatchService

QUERY = "V0//V1"


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@pytest.fixture
def graph():
    return citation_graph(40, num_labels=5, seed=3)


@pytest.fixture
def family(tmp_path, graph):
    """A persisted base index + the WAL path a durable service would use."""
    base = tmp_path / "index.ridx"
    MatchEngine(graph, backend="full").save_index(base, format="binary")
    return base, tmp_path / "index.wal"


def durable_service(base, wal, **kwargs):
    kwargs.setdefault("auto_compact", False)
    kwargs.setdefault("max_workers", 1)
    return MatchService.from_index(base, wal_path=wal, **kwargs)


class TestDeltaPath:
    def test_update_defers_and_read_materializes(self, graph):
        with MatchService(
            graph, backend="full", update_policy="delta", max_workers=1,
            auto_compact=False,
        ) as service:
            report = service.apply_updates(edges_added=[(0, 1, 1)])
            assert report.deferred
            assert report.epoch == 1
            assert service.epoch == 1
            mutated = graph.copy()
            mutated.add_edge(0, 1, 1)
            fresh = MatchEngine(mutated, backend="full")
            assert exact(service.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )
            stats = service.statistics()["delta"]
            assert stats["delta_updates"] == 1
            assert stats["materializations"] == 1
            assert stats["pending_records"] == 0

    def test_auto_policy_routes_large_batches_eagerly(self, graph):
        with MatchService(
            graph, backend="full", update_policy="auto",
            delta_batch_limit=2, max_workers=1, auto_compact=False,
        ) as service:
            small = service.apply_updates(edges_added=[(0, 2)])
            assert small.deferred
            big = service.apply_updates(
                edges_added=[(0, 3), (0, 4), (1, 5)]
            )
            assert not big.deferred
            stats = service.statistics()["delta"]
            assert stats["delta_updates"] == 1
            assert stats["eager_updates"] == 1
            assert stats["pending_records"] == 0  # eager absorbed the log

    def test_failed_batch_rolls_back_cleanly(self, graph):
        with MatchService(
            graph, backend="full", update_policy="delta", max_workers=1,
            auto_compact=False,
        ) as service:
            service.apply_updates(edges_added=[(0, 6)])
            with pytest.raises(ServiceError):
                # Second record targets a node that does not exist.
                service.apply_updates(
                    edges_added=[(1, 7)], edges_removed=[(12345, 0)]
                )
            assert service.epoch == 1, "failed batch must not bump the epoch"
            mutated = graph.copy()
            mutated.add_edge(0, 6)
            fresh = MatchEngine(mutated, backend="full")
            assert exact(service.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )


class TestWalRecovery:
    def test_crash_before_fold_replays_and_converges(self, family, graph):
        base, wal = family
        service = durable_service(base, wal, update_policy="delta")
        service.apply_updates(edges_added=[(0, 1, 1)])
        service.apply_updates(edges_added=[(2, 0, 2)])
        # Simulated crash: the process dies without close()/compact().
        service._pool.shutdown(wait=False)
        mutated = graph.copy()
        mutated.add_edge(0, 1, 1)
        mutated.add_edge(2, 0, 2)
        fresh = MatchEngine(mutated, backend="full")
        with durable_service(base, wal) as reopened:
            assert reopened.statistics()["delta"]["pending_records"] == 2
            assert exact(reopened.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )

    def test_kill_mid_append_drops_the_torn_tail(self, family, graph):
        base, wal = family
        service = durable_service(base, wal, update_policy="delta")
        service.apply_updates(edges_added=[(0, 1, 1)])
        service._pool.shutdown(wait=False)
        with open(wal, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef\xde\xad")  # half a frame
        mutated = graph.copy()
        mutated.add_edge(0, 1, 1)
        fresh = MatchEngine(mutated, backend="full")
        with durable_service(base, wal) as reopened:
            wal_stats = reopened.statistics()["delta"]["wal"]
            assert wal_stats["recovered_records"] == 1
            assert wal_stats["recovered_truncated_tail"]
            assert wal_stats["recovered_dropped_bytes"] == 6
            assert exact(reopened.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )

    def test_recovered_wal_must_apply_to_the_base(self, family):
        base, wal = family
        service = durable_service(base, wal, update_policy="delta")
        service.apply_updates(edges_added=[(30, 31, 1)])
        service._pool.shutdown(wait=False)
        other_base = base.with_name("other.ridx")
        MatchEngine(
            citation_graph(5, num_labels=2, seed=9), backend="full"
        ).save_index(other_base, format="binary")
        with pytest.raises(ServiceError, match="does not apply"):
            durable_service(other_base, wal)


class TestCompaction:
    def test_compact_writes_a_generation_and_truncates_the_wal(
        self, family, graph
    ):
        base, wal = family
        with durable_service(base, wal, update_policy="delta") as service:
            service.apply_updates(edges_added=[(0, 1, 1)])
            report = service.compact()
            assert report["generation"] == 1
            assert report["records_folded"] == 1
            assert base.with_name("index.gen-0001.ridx").exists()
        scan = scan_wal(wal)
        assert scan.records == () and scan.generation == 1
        # The next cold start boots from the generation: no WAL replay,
        # but the folded edge is in the index it opens.
        mutated = graph.copy()
        mutated.add_edge(0, 1, 1)
        fresh = MatchEngine(mutated, backend="full")
        with durable_service(base, wal) as reopened:
            assert reopened.statistics()["delta"]["pending_records"] == 0
            assert exact(reopened.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )

    def test_stale_wal_is_discarded_not_double_applied(self, family, graph):
        """Crash between manifest update and WAL truncate (swap step 2->3)."""
        from repro.delta import WriteAheadLog, records_from_updates

        base, wal = family
        with durable_service(base, wal, update_policy="delta") as service:
            service.apply_updates(edges_added=[(0, 1, 1)])
            service.compact()
        # Forge the pre-truncation state: a gen-0 WAL still holding the
        # already-folded record.
        with WriteAheadLog(wal, generation=0) as forged:
            forged.rewrite((), generation=0)
            forged.append(records_from_updates(edges_added=[(0, 1, 1)]))
        mutated = graph.copy()
        mutated.add_edge(0, 1, 1)
        fresh = MatchEngine(mutated, backend="full")
        with durable_service(base, wal) as reopened:
            stats = reopened.statistics()["delta"]
            assert stats["pending_records"] == 0, "stale WAL must be dropped"
            assert stats["wal"]["generation"] == 1
            assert exact(reopened.top_k(QUERY, 8)) == exact(
                fresh.top_k(QUERY, 8)
            )

    def test_policy_trips_background_compaction(self, family):
        base, wal = family
        with durable_service(
            base, wal,
            update_policy="delta",
            auto_compact=True,
            compaction=CompactionPolicy(max_records=2, max_ratio=0),
        ) as service:
            service.apply_updates(edges_added=[(0, 1, 1)])
            service.apply_updates(edges_added=[(2, 0, 2)])
            import time

            deadline = time.monotonic() + 10
            while (
                service.statistics()["delta"]["compactions"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            stats = service.statistics()["delta"]
            assert stats["compactions"] == 1
            assert stats["generations"]["current"] == 1
        assert scan_wal(wal).generation == 1

    def test_compact_without_generation_family_still_truncates(self, graph):
        """An in-memory service (no from_index base) can still compact:
        the fold happens, there is just no .ridx family to write."""
        with MatchService(
            graph, backend="full", update_policy="delta", max_workers=1,
            auto_compact=False,
        ) as service:
            service.apply_updates(edges_added=[(0, 1, 1)])
            report = service.compact()
            assert report["records_folded"] == 1
            assert report["path"] is None
            assert service.statistics()["delta"]["pending_records"] == 0


class TestCloseReportsCompactorStop:
    def test_close_reports_timed_out_compactor_stop(self, family):
        base, wal = family
        service = durable_service(
            base, wal, update_policy="delta", auto_compact=True,
        )
        service.apply_updates(edges_added=[(0, 1, 1)])  # spins the thread up
        real_stop = service._compactor.stop
        service._compactor.stop = lambda *args, **kwargs: False
        assert service.close() is False
        assert real_stop() is True  # actually join the thread

    def test_clean_close_returns_true(self, family):
        base, wal = family
        service = durable_service(
            base, wal, update_policy="delta", auto_compact=True,
        )
        service.apply_updates(edges_added=[(0, 1, 1)])
        assert service.close() is True
