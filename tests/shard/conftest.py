"""Shared fixtures for the shard suite: a deterministic medium graph."""

from __future__ import annotations

import random

import pytest

from repro.graph.digraph import LabeledDiGraph


def build_fixture_graph(
    nodes: int = 60, labels: int = 6, edges: int = 150, seed: int = 7
) -> LabeledDiGraph:
    """A deterministic random digraph with a label-skewed alphabet."""
    alphabet = [chr(ord("A") + i) for i in range(labels)]
    graph = LabeledDiGraph()
    for i in range(nodes):
        graph.add_node(f"v{i}", alphabet[i % labels])
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(nodes)]
    for _ in range(edges):
        tail, head = rng.sample(names, 2)
        if not graph.has_edge(tail, head):
            graph.add_edge(tail, head, rng.randint(1, 9))
    return graph


@pytest.fixture(scope="module")
def medium_graph() -> LabeledDiGraph:
    return build_fixture_graph()


#: Queries whose roots cover several labels of the fixture alphabet.
FIXTURE_QUERIES = ("A//B", "A//B[C]", "B/C//D[E]", "F//A", "C//*")
