"""Layering contract: repro.shard never imports the serving layer.

``repro.shard`` is an engine-level library — ``repro.service`` hosts it
(``ShardedMatchService``), never the other way around, and the CLI /
bench / io layers are equally off limits.  The CI lint job enforces the
same rule with ruff (TID251 banned-api,
``config/ruff-shard-layering.toml``); this test keeps the contract
green for plain ``pytest`` runs and documents the allowlist.
"""

import ast
from pathlib import Path

import repro.shard

#: The only repro modules the shard layer may depend on.
ALLOWED_PREFIXES = (
    "repro.shard",
    "repro.compact",
    "repro.delta",
    "repro.graph",
    "repro.exceptions",
    "repro.utils",
    "repro.core",
    "repro.engine",
    "repro.query",
    "repro.storage",
)


def iter_repro_imports(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro"):
                yield node.module


def test_shard_only_imports_lower_layers():
    package_dir = Path(repro.shard.__file__).parent
    violations = []
    for source in sorted(package_dir.glob("*.py")):
        for module in iter_repro_imports(source):
            if not module.startswith(ALLOWED_PREFIXES):
                violations.append(f"{source.name}: {module}")
    assert not violations, (
        "repro.shard must stay below the serving layer; "
        f"offending imports: {violations}"
    )


def test_service_layer_is_explicitly_banned():
    """The contract the ruff gate pins: no repro.service anywhere in shard."""
    package_dir = Path(repro.shard.__file__).parent
    for source in sorted(package_dir.glob("*.py")):
        for module in iter_repro_imports(source):
            assert not module.startswith("repro.service"), (
                f"{source.name} imports {module}"
            )
