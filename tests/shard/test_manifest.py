"""Shard manifest writer/loader: round trips, checksums, corruption."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import IndexFormatError, ShardError
from repro.shard import (
    MANIFEST_KIND,
    load_manifest,
    shard_index,
    sniff_is_shard_manifest,
)
from repro.shard.manifest import (
    boundary_pairs_from_disk,
    shard_file_name,
    shard_paths,
)


@pytest.fixture()
def written(tmp_path, medium_graph):
    manifest_path = tmp_path / "index.ridx"
    document = shard_index(medium_graph, manifest_path, 3)
    return manifest_path, document


def test_round_trip(written):
    manifest_path, document = written
    loaded = load_manifest(manifest_path, verify_files=True)
    assert loaded == document
    assert loaded["kind"] == MANIFEST_KIND
    assert loaded["shard_count"] == 3
    for index, path in enumerate(shard_paths(loaded, manifest_path)):
        assert path.name == shard_file_name(manifest_path, index)
        assert path.exists()


def test_sniffing(written, tmp_path):
    manifest_path, _document = written
    assert sniff_is_shard_manifest(manifest_path)
    shard0 = manifest_path.with_name(shard_file_name(manifest_path, 0))
    assert not sniff_is_shard_manifest(shard0)  # binary .ridx, not JSON
    other = tmp_path / "other.json"
    other.write_text('{"kind": "something-else"}')
    assert not sniff_is_shard_manifest(other)
    assert not sniff_is_shard_manifest(tmp_path / "missing.ridx")


def test_manifest_records_counts_and_spans(written, medium_graph):
    _path, document = written
    counts = document["counts"]
    assert counts["nodes"] == medium_graph.num_nodes
    assert counts["edges"] == medium_graph.num_edges
    assert counts["labels"] == len(medium_graph.labels())
    cursor = 0
    for entry in document["shards"]:
        assert entry["span"][0] == cursor
        cursor = entry["span"][1]
        assert entry["owned_nodes"] == entry["span"][1] - entry["span"][0]
        assert entry["member_nodes"] >= entry["owned_nodes"]
    assert cursor == medium_graph.num_nodes


def test_tampered_manifest_is_rejected(written):
    manifest_path, _document = written
    document = json.loads(manifest_path.read_text())
    document["epoch"] = 99  # checksum no longer matches
    manifest_path.write_text(json.dumps(document, indent=2, sort_keys=True))
    with pytest.raises(IndexFormatError, match="checksum"):
        load_manifest(manifest_path)


def test_wrong_kind_and_version_are_rejected(written):
    manifest_path, _document = written
    document = json.loads(manifest_path.read_text())
    for patch, pattern in (
        ({"kind": "not-a-manifest"}, "not a shard manifest"),
        ({"version": 999}, "version"),
    ):
        broken = dict(document, **patch)
        manifest_path.write_text(json.dumps(broken))
        with pytest.raises(IndexFormatError, match=pattern):
            load_manifest(manifest_path)


def test_missing_shard_file_is_rejected(written):
    manifest_path, _document = written
    shard1 = manifest_path.with_name(shard_file_name(manifest_path, 1))
    shard1.unlink()
    with pytest.raises(IndexFormatError, match="missing shard file"):
        load_manifest(manifest_path)


def test_size_mismatch_is_rejected(written):
    manifest_path, _document = written
    shard1 = manifest_path.with_name(shard_file_name(manifest_path, 1))
    with open(shard1, "ab") as handle:
        handle.write(b"\0")
    with pytest.raises(IndexFormatError, match="bytes"):
        load_manifest(manifest_path)


def test_content_corruption_caught_by_verify(written):
    manifest_path, _document = written
    shard1 = manifest_path.with_name(shard_file_name(manifest_path, 1))
    data = bytearray(shard1.read_bytes())
    data[len(data) // 2] ^= 0xFF  # same size, different bytes
    shard1.write_bytes(bytes(data))
    load_manifest(manifest_path)  # size check alone cannot see this
    with pytest.raises(IndexFormatError, match="SHA-256"):
        load_manifest(manifest_path, verify_files=True)


def test_unreadable_manifest_is_rejected(tmp_path):
    path = tmp_path / "garbage.ridx"
    path.write_text("{not json")
    with pytest.raises(IndexFormatError, match="unreadable"):
        load_manifest(path)
    with pytest.raises(IndexFormatError):
        load_manifest(tmp_path / "missing.ridx")


def test_boundary_pairs_round_trip_through_disk(written, medium_graph):
    manifest_path, document = written
    from repro.shard import ShardPlan

    plan = ShardPlan.from_graph(medium_graph, 3)
    for entry in document["shards"]:
        shard_path = manifest_path.with_name(entry["file"])
        tails, heads = boundary_pairs_from_disk(shard_path)
        view = plan.span_view(entry["index"])
        expected_tails, expected_heads = view.boundary_pairs()
        assert list(tails) == list(expected_tails)
        assert list(heads) == list(expected_heads)
        assert len(tails) == entry["boundary_pairs"]


def test_boundary_pairs_reject_plain_index(tmp_path, medium_graph):
    from repro.engine.core import MatchEngine

    path = tmp_path / "plain.ridx"
    MatchEngine(medium_graph).save_index(path)
    with pytest.raises(ShardError, match="not a shard file"):
        boundary_pairs_from_disk(path)


def test_shard_meta_descriptor_is_persisted(written):
    manifest_path, document = written
    from repro.storage.diskindex import DiskIndex

    for entry in document["shards"]:
        disk = DiskIndex(manifest_path.with_name(entry["file"]))
        try:
            shard_meta = disk.meta["shard"]
        finally:
            disk.close()
        assert shard_meta["index"] == entry["index"]
        assert shard_meta["shard_count"] == document["shard_count"]
        assert shard_meta["span"] == entry["span"]
        assert shard_meta["epoch"] == document["epoch"]


def _rewrite_with_valid_checksum(manifest_path, document):
    from repro.shard.manifest import _canonical_checksum

    document = dict(document)
    document["checksum"] = _canonical_checksum(document)
    manifest_path.write_text(json.dumps(document, indent=2, sort_keys=True))


def test_replication_round_trips(tmp_path, medium_graph):
    path = tmp_path / "replicated.ridx"
    document = shard_index(medium_graph, path, 3, replication=2)
    assert document["replication"] == 2
    assert load_manifest(path, verify_files=True)["replication"] == 2


def test_default_replication_is_one(written):
    _manifest_path, document = written
    assert document["replication"] == 1


def test_bad_replication_is_rejected(written):
    manifest_path, document = written
    for bad in (0, -1, 1.5, "two", True):
        _rewrite_with_valid_checksum(
            manifest_path, dict(document, replication=bad)
        )
        with pytest.raises(IndexFormatError, match="replication"):
            load_manifest(manifest_path)


def test_manifests_without_replication_stay_loadable(written):
    """Pre-replication manifests have no key at all; they still load and
    serve with the implied R=1."""
    manifest_path, document = written
    legacy = {k: v for k, v in document.items() if k != "replication"}
    _rewrite_with_valid_checksum(manifest_path, legacy)
    loaded = load_manifest(manifest_path)
    assert "replication" not in loaded
    assert loaded.get("replication", 1) == 1
