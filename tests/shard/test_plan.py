"""ShardPlan partition invariants and SpanView closure semantics."""

from __future__ import annotations

import pytest

from repro.compact import CompactGraph, NodeInterner, SpanView, forward_closure
from repro.exceptions import ShardError
from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.shard import ShardPlan
from repro.shard.plan import plan_from_layout
from tests.shard.conftest import build_fixture_graph


def test_spans_are_contiguous_disjoint_and_cover(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    assert plan.shard_count == 3
    cursor = 0
    for spec in plan.shards:
        start, stop = spec.span
        assert start == cursor, "spans must be contiguous"
        assert stop > start, "spans must be non-empty"
        cursor = stop
    assert cursor == medium_graph.num_nodes, "spans must cover every node"


def test_labels_are_whole_and_in_interner_order(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    interner = plan.interner
    flat = [label for spec in plan.shards for label in spec.labels]
    assert flat == list(interner.labels()), "label runs must tile the alphabet"
    for spec in plan.shards:
        for label in spec.labels:
            rng = interner.label_range(label)
            start, stop = spec.span
            assert start <= rng.start and rng.stop <= stop, (
                "a label's id range must sit wholly inside its owner's span"
            )


def test_every_label_has_exactly_one_owner(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 4)
    owners = {}
    for spec in plan.shards:
        for label in spec.labels:
            assert label not in owners, f"label {label!r} owned twice"
            owners[label] = spec.index
    for label in medium_graph.labels():
        assert label in owners
        assert plan.owner_of(label) == owners[label]


def test_plan_is_deterministic(medium_graph):
    first = ShardPlan.from_graph(medium_graph, 3)
    second = ShardPlan.from_graph(medium_graph, 3)
    assert [spec.labels for spec in first.shards] == [
        spec.labels for spec in second.shards
    ]
    assert [spec.span for spec in first.shards] == [
        spec.span for spec in second.shards
    ]


def test_shard_count_clamps_to_label_count():
    graph = graph_from_edges(
        {"x": "A", "y": "B"}, [("x", "y", 1)]
    )
    plan = ShardPlan.from_graph(graph, 8)
    assert plan.shard_count == 2  # only two labels exist
    assert plan.requested_shards == 8


def test_single_shard_owns_everything(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 1)
    assert plan.shard_count == 1
    spec = plan.shards[0]
    assert spec.span == (0, medium_graph.num_nodes)
    assert spec.owned_nodes == medium_graph.num_nodes


def test_invalid_plans_raise():
    graph = graph_from_edges({"x": "A"}, [])
    with pytest.raises(ShardError):
        ShardPlan.from_graph(graph, 0)
    with pytest.raises(ShardError):
        ShardPlan.from_graph(LabeledDiGraph(), 2)


def test_member_sets_union_to_whole_graph(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    members = set()
    for spec in plan.shards:
        members.update(plan.member_nodes(spec.index))
    assert members == set(medium_graph.nodes())


def test_subgraph_edges_union_to_whole_graph(medium_graph):
    """Every edge's tail owner replicates both endpoints, so the union
    of shard subgraphs reproduces the full edge set — the closed-set
    property ShardedEngine.load relies on to reassemble the graph."""
    plan = ShardPlan.from_graph(medium_graph, 3)
    edges = set()
    for spec in plan.shards:
        sub = plan.subgraph(medium_graph, spec.index)
        edges.update((t, h, w) for t, h, w in sub.edges())
    assert edges == set(medium_graph.edges())


def test_forward_closure_matches_reachability(medium_graph):
    interner = NodeInterner.from_graph(medium_graph)
    compact = CompactGraph(medium_graph, interner)
    seeds = [0, 5]
    members = set(forward_closure(compact, seeds))
    # BFS reference over the external graph
    frontier = [interner.resolve(i) for i in seeds]
    seen = set(frontier)
    while frontier:
        node = frontier.pop()
        for head in medium_graph.successors(node):
            if head not in seen:
                seen.add(head)
                frontier.append(head)
    assert members == {interner.intern(node) for node in seen}


def test_span_view_boundary_pairs(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    view = plan.span_view(1)
    tails, heads = view.boundary_pairs()
    assert len(tails) == len(heads)
    members = set(view.members())
    interner = plan.interner
    for tail_id, head_id in zip(tails, heads):
        assert tail_id in members, "boundary tails are members"
        assert not view.owns(head_id), "boundary heads leave the owned span"
        assert medium_graph.has_edge(
            interner.resolve(tail_id), interner.resolve(head_id)
        )
    # completeness: every member edge leaving the owned span is recorded
    recorded = set(zip(tails, heads))
    for tail_id in members:
        for head_id, _w in plan.compact.out_edges(tail_id):
            if not view.owns(head_id):
                assert (tail_id, head_id) in recorded


def test_span_view_replicas_are_closure_minus_span(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    view = plan.span_view(0)
    members = set(view.members())
    owned = set(view.owned_ids())
    assert owned <= members
    assert set(view.replicated_ids()) == members - owned


def test_plan_from_layout_round_trips(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    rebuilt = plan_from_layout(
        medium_graph,
        [list(spec.labels) for spec in plan.shards],
        plan.requested_shards,
    )
    assert [spec.span for spec in rebuilt.shards] == [
        spec.span for spec in plan.shards
    ]


def test_plan_from_layout_rejects_bad_layouts(medium_graph):
    plan = ShardPlan.from_graph(medium_graph, 3)
    layout = [list(spec.labels) for spec in plan.shards]
    with pytest.raises(ShardError):
        plan_from_layout(medium_graph, layout[::-1], 3)  # wrong order
    with pytest.raises(ShardError):
        plan_from_layout(medium_graph, layout[:-1], 3)  # missing labels
    broken = [list(run) for run in layout]
    broken[0].append("NOPE")
    with pytest.raises(ShardError):
        plan_from_layout(medium_graph, broken, 3)  # unknown label


def test_describe_is_json_ready(medium_graph):
    import json

    plan = ShardPlan.from_graph(medium_graph, 3)
    described = plan.describe()
    json.dumps(described)  # must not raise
    assert len(described) == 3
    assert [entry["index"] for entry in described] == [0, 1, 2]


def test_uneven_label_sizes_balance_reasonably():
    """One giant label and several tiny ones: the giant label gets its
    own shard rather than dragging everything into shard 0."""
    graph = LabeledDiGraph()
    for i in range(50):
        graph.add_node(f"big{i}", "A")
    for label in ("B", "C", "D"):
        for i in range(5):
            graph.add_node(f"{label.lower()}{i}", label)
    plan = ShardPlan.from_graph(graph, 2)
    assert plan.shard_count == 2
    sizes = [spec.owned_nodes for spec in plan.shards]
    assert sizes == [50, 15]
