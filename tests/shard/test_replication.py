"""Replicated shard serving: failover reads, revival, per-shard WAL.

Spawns real worker processes (spawn start method, as production does),
so graphs stay small — these pin protocol correctness: a killed replica
must never change an answer, and an acked update must survive a crash.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.core import MatchEngine
from repro.exceptions import ServiceError, ShardError
from repro.service import ShardedMatchService
from repro.shard import ShardPlan, shard_index
from tests.shard.conftest import FIXTURE_QUERIES, build_fixture_graph

QUERIES = FIXTURE_QUERIES[:3]


@pytest.fixture(scope="module")
def small_graph():
    return build_fixture_graph(nodes=36, labels=6, edges=90, seed=11)


@pytest.fixture(scope="module")
def flat(small_graph):
    return MatchEngine(small_graph)


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


def scores(matches):
    return [m.score for m in matches]


def crash(service):
    """Simulate the coordinator dying: kill workers, leak the WALs.

    No ``close()`` — the segments keep whatever the last acked append
    left on disk, exactly like a SIGKILL'd process.
    """
    for group in service._shards:
        for worker in group.replicas:
            if worker.process is not None:
                worker.process.kill()
                worker.process.join(timeout=10)
    service._pool.shutdown(wait=False)
    service._fanout.shutdown(wait=False)


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# ----------------------------------------------------------------------
# Replica spawning and validation
# ----------------------------------------------------------------------


def test_replication_spawns_r_workers_per_shard(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2
    ) as service:
        stats = service.statistics(include_shards=True)
        assert stats["replication"] == 2
        assert stats["workers_alive"] == 4
        for entry in stats["shards"]:
            assert entry["replication"] == 2
            assert entry["replicas_alive"] == 2


def test_replication_validation():
    graph = build_fixture_graph(nodes=12, labels=3, edges=20, seed=1)
    with pytest.raises(ServiceError, match="replication"):
        ShardedMatchService(graph, num_shards=2, replication=0)
    with pytest.raises(ShardError, match="replication"):
        ShardPlan.from_graph(graph, 2, 0)


def test_manifest_records_replication(small_graph, tmp_path):
    manifest = tmp_path / "index.ridx"
    document = shard_index(small_graph, manifest, 2, replication=2)
    assert document["replication"] == 2
    with ShardedMatchService.from_manifest(manifest) as service:
        assert service.replication == 2
        assert service.statistics()["workers_alive"] == 4
    # An explicit override beats the manifest hint.
    with ShardedMatchService.from_manifest(manifest, replication=1) as service:
        assert service.replication == 1
        assert service.statistics()["workers_alive"] == 2


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------


def test_kill_one_replica_per_shard_keeps_answers_identical(
    small_graph, flat
):
    """The acceptance pin: SIGKILL one worker per shard mid-traffic and
    every answer stays identical to the pre-kill (and flat) answer —
    zero ShardUnavailableErrors reach the caller."""
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2
    ) as service:
        before = {q: exact(service.top_k(q, 6)) for q in QUERIES}
        for query in QUERIES:
            assert scores(service.top_k(query, 6)) == scores(
                flat.top_k(query, 6)
            )
        for group in service._shards:
            group.replicas[0].process.kill()
        for _ in range(4):
            for query in QUERIES:
                assert exact(service.top_k(query, 6)) == before[query]
        stats = service.statistics()
        assert stats["workers_alive"] >= 2


def test_poisoned_pipe_fails_over_and_revives(small_graph, flat):
    """A replica whose pipe breaks mid-service: the peer answers the
    same request (failover), and the broken replica is respawned in the
    background without blocking reads."""
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2
    ) as service:
        victim = service.route(QUERIES[0])[0]
        group = service._shards[victim]
        group.replicas[0].conn.close()
        group.replicas[1].conn.close()
        # Every replica is poisoned: the final attempt restarts inline.
        assert scores(service.top_k(QUERIES[0], 5)) == scores(
            flat.top_k(QUERIES[0], 5)
        )
        assert wait_until(lambda: group.alive_count == 2)
        assert group.failovers >= 1
        assert group.restarts >= 1


def test_dead_replica_is_revived_by_passing_reads(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2
    ) as service:
        victim = service.route(QUERIES[0])[0]
        group = service._shards[victim]
        group.replicas[1].process.kill()
        group.replicas[1].process.join(timeout=10)
        # Reads keep being served by the live replica, and the rotation
        # schedules a background respawn for the dead one it skips.
        assert wait_until(
            lambda: (
                service.top_k(QUERIES[0], 3) is not None
                and group.alive_count == 2
            )
        )
        assert group.restarts >= 1


def test_read_order_round_robins(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=1, replication=2
    ) as service:
        group = service._shards[0]
        first = group._read_order()[0]
        second = group._read_order()[0]
        assert first is not second, "consecutive reads rotate replicas"


def test_updates_broadcast_to_all_replicas(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2, update_policy="eager"
    ) as service:
        report = service.apply_updates(nodes_added={"vx": "A"})
        assert report["epoch"] == 1
        # Both replicas of every shard moved to the new epoch: pin by
        # asking each directly.
        for group in service._shards:
            for worker in group.replicas:
                reply = worker.call("ping", (), time.monotonic() + 30)
                assert reply == ("ok", 1), (group.index, worker.replica)


def test_dead_replica_catches_up_via_restart_on_broadcast(small_graph, flat):
    with ShardedMatchService(
        small_graph, num_shards=2, replication=2, update_policy="eager"
    ) as service:
        group = service._shards[0]
        group.replicas[1].process.kill()
        group.replicas[1].process.join(timeout=10)
        service.apply_updates(edges_added=[("v1", "v20", 2)])
        reply = group.replicas[1].call("ping", (), time.monotonic() + 30)
        assert reply == ("ok", 1), "restarted from the post-update boot"
        updated = small_graph.copy()
        updated.add_edge("v1", "v20", 2)
        fresh = MatchEngine(updated)
        for query in QUERIES:
            assert scores(service.top_k(query, 5)) == scores(
                fresh.top_k(query, 5)
            )


# ----------------------------------------------------------------------
# Per-shard write-ahead durability
# ----------------------------------------------------------------------


def test_sharded_wal_replays_after_crash(small_graph, tmp_path):
    manifest = tmp_path / "index.ridx"
    wal_dir = tmp_path / "wal"
    shard_index(small_graph, manifest, 2)
    service = ShardedMatchService.from_manifest(manifest, wal_path=wal_dir)
    try:
        service.apply_updates(edges_added=[("v1", "v20", 2)])
        service.apply_updates(nodes_added={"vn": "B"})
        service.apply_updates(edges_added=[("vn", "v3", 1)])
    finally:
        crash(service)  # acked, never compacted, never closed

    updated = small_graph.copy()
    updated.add_edge("v1", "v20", 2)
    updated.add_node("vn", "B")
    updated.add_edge("vn", "v3", 1)
    fresh = MatchEngine(updated)
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as rebooted:
        wal = rebooted.statistics()["delta"]["wal"]
        assert wal["recovered_records"] == 3
        assert wal["stale_discards"] == 0
        for query in QUERIES:
            assert scores(rebooted.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )


def test_sharded_wal_replays_with_replication(small_graph, tmp_path):
    manifest = tmp_path / "index.ridx"
    wal_dir = tmp_path / "wal"
    shard_index(small_graph, manifest, 2, replication=2)
    service = ShardedMatchService.from_manifest(manifest, wal_path=wal_dir)
    try:
        service.apply_updates(edges_added=[("v2", "v30", 3)])
    finally:
        crash(service)
    updated = small_graph.copy()
    updated.add_edge("v2", "v30", 3)
    fresh = MatchEngine(updated)
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as rebooted:
        assert rebooted.replication == 2
        assert (
            rebooted.statistics()["delta"]["wal"]["recovered_records"] == 1
        )
        for query in QUERIES:
            assert scores(rebooted.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )


def test_wal_checkpoint_on_compact_truncates_segments(
    small_graph, tmp_path
):
    manifest = tmp_path / "index.ridx"
    wal_dir = tmp_path / "wal"
    shard_index(small_graph, manifest, 2)
    updated = small_graph.copy()
    updated.add_edge("v1", "v20", 2)
    fresh = MatchEngine(updated)
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as service:
        service.apply_updates(edges_added=[("v1", "v20", 2)])
        report = service.compact()
        assert report["checkpointed"] is True
        wal = service.statistics()["delta"]["wal"]
        assert wal["records"] == 0, "acked records folded into the files"
    # The checkpoint rewrote the shard files: a cold start replays
    # nothing and still serves the updated graph.
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as rebooted:
        wal = rebooted.statistics()["delta"]["wal"]
        assert wal["recovered_records"] == 0
        assert wal["stale_discards"] == 0
        for query in QUERIES:
            assert scores(rebooted.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )


def test_stale_wal_segments_discarded_on_boot(small_graph, tmp_path):
    manifest = tmp_path / "index.ridx"
    wal_dir = tmp_path / "wal"
    shard_index(small_graph, manifest, 2)
    service = ShardedMatchService.from_manifest(manifest, wal_path=wal_dir)
    try:
        service.apply_updates(edges_added=[("v1", "v20", 2)])
    finally:
        crash(service)
    # Someone re-sharded the index out of band at a later epoch: the
    # old segments' records are already (or never will be) in the
    # files — they must be discarded, not replayed.
    shard_index(small_graph, manifest, 2, epoch=2)
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as rebooted:
        wal = rebooted.statistics()["delta"]["wal"]
        assert wal["recovered_records"] == 0
        assert wal["stale_discards"] == 2
        assert wal["generation"] == 2


def test_wal_ahead_of_manifest_is_refused(small_graph, tmp_path):
    manifest = tmp_path / "index.ridx"
    wal_dir = tmp_path / "wal"
    shard_index(small_graph, manifest, 2)
    with ShardedMatchService.from_manifest(
        manifest, wal_path=wal_dir
    ) as service:
        service.apply_updates(edges_added=[("v1", "v20", 2)])
        service.compact()  # stamps the segments at epoch 1
    shard_index(small_graph, manifest, 2, epoch=0)  # roll the index back
    with pytest.raises(ServiceError, match="ahead of the index epoch"):
        ShardedMatchService.from_manifest(manifest, wal_path=wal_dir)


def test_graph_mode_wal_survives_crash(small_graph, tmp_path):
    """A graph-constructed service has no durable base: its segments
    hold the whole update history and replay onto the same graph."""
    wal_dir = tmp_path / "wal"
    service = ShardedMatchService(
        small_graph, num_shards=2, wal_path=wal_dir
    )
    try:
        service.apply_updates(edges_added=[("v1", "v20", 2)])
    finally:
        crash(service)
    updated = small_graph.copy()
    updated.add_edge("v1", "v20", 2)
    fresh = MatchEngine(updated)
    with ShardedMatchService(
        small_graph, num_shards=2, wal_path=wal_dir
    ) as rebooted:
        assert (
            rebooted.statistics()["delta"]["wal"]["recovered_records"] == 1
        )
        for query in QUERIES:
            assert scores(rebooted.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )
