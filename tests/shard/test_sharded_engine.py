"""ShardedEngine: routing, equivalence, streams, updates, disk loads."""

from __future__ import annotations

import json

import pytest

from repro.engine.core import MatchEngine
from repro.exceptions import EngineError, ShardError
from repro.shard import ShardedEngine, merge_topk, shard_index
from tests.shard.conftest import FIXTURE_QUERIES


def exact(matches):
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@pytest.fixture(scope="module")
def flat(medium_graph):
    return MatchEngine(medium_graph)


@pytest.fixture(scope="module", params=(1, 2, 3, 5))
def sharded(request, medium_graph):
    return ShardedEngine.from_graph(medium_graph, request.param)


def test_top_k_equals_flat_engine(flat, sharded):
    for query in FIXTURE_QUERIES:
        for k in (1, 5, 12):
            want = [m.score for m in flat.top_k(query, k)]
            got = [m.score for m in sharded.top_k(query, k)]
            assert want == got, (query, k, sharded.shard_count)


def test_plain_root_routes_to_one_shard(sharded):
    for label in "ABCDEF":
        targets = sharded.route(f"{label}//B")
        assert len(targets) == 1
        assert targets[0] == sharded.plan.owner_of(label)


def test_unknown_root_label_routes_nowhere(sharded):
    assert sharded.route("ZZZ//A") == ()
    assert sharded.top_k("ZZZ//A", 5) == []


def test_cyclic_patterns_are_rejected(sharded):
    with pytest.raises(EngineError, match="cyclic"):
        sharded.top_k("graph(a:A, b:B; a-b, b-a)", 5)


def test_stream_is_lazy_and_ordered(flat, sharded):
    stream = sharded.stream("A//B[C]")
    first = stream.take(4)
    second = stream.take(4)
    combined = first + second
    want = flat.top_k("A//B[C]", 8)
    assert [m.score for m in combined] == [m.score for m in want]
    assert stream.consumed == len(combined)


def test_stream_exhaustion_returns_none(sharded):
    stream = sharded.stream("F//A")
    drained = stream.take(10_000)
    assert stream.next() is None
    scores = [m.score for m in drained]
    assert scores == sorted(scores)


def test_batch_matches_individual_topk(sharded):
    queries = list(FIXTURE_QUERIES[:3])
    batched = sharded.batch(queries, 6)
    for query, matches in zip(queries, batched):
        assert exact(matches) == exact(sharded.top_k(query, 6))


def test_negative_k_raises(sharded):
    with pytest.raises(ValueError):
        sharded.top_k("A//B", -1)


def test_merge_topk_dedupes_replica_matches(flat):
    partial = flat.top_k("A//B", 5)
    merged = merge_topk([partial, list(partial)], 5)
    # Duplicated partials collapse to the same match set; order within a
    # tied score group is canonicalized (deterministic), not the
    # engine's enumeration-internal tie order.
    assert sorted(exact(merged)) == sorted(exact(partial))
    assert [m.score for m in merged] == [m.score for m in partial]


def test_merge_topk_is_deterministic_under_shuffling(flat):
    import random

    partial = flat.top_k("A//B[C]", 8)
    reference = merge_topk([partial], 8)
    rng = random.Random(0)
    for _ in range(5):
        pieces = [list(partial[:3]), list(partial[3:]), list(partial[2:6])]
        rng.shuffle(pieces)
        assert exact(merge_topk(pieces, 8)) == exact(reference)


def test_updated_rebuilds_one_epoch_later(medium_graph, flat):
    sharded = ShardedEngine.from_graph(medium_graph, 3)
    swapped = sharded.updated(edges_added=[("v1", "v40")], nodes_added={"v99": "B"})
    assert swapped.epoch == sharded.epoch + 1
    assert sharded.graph.num_nodes == medium_graph.num_nodes  # receiver untouched
    mutated = medium_graph.copy()
    mutated.add_node("v99", "B")
    mutated.add_edge("v1", "v40")
    fresh = MatchEngine(mutated)
    for query in FIXTURE_QUERIES[:3]:
        assert [m.score for m in swapped.top_k(query, 8)] == [
            m.score for m in fresh.top_k(query, 8)
        ]


def test_updated_rejects_bad_deltas(medium_graph):
    sharded = ShardedEngine.from_graph(medium_graph, 2)
    with pytest.raises(ShardError, match="invalid graph update"):
        sharded.updated(edges_removed=[("v0", "does-not-exist")])


def test_load_round_trip(tmp_path, medium_graph, flat):
    manifest = tmp_path / "index.ridx"
    shard_index(medium_graph, manifest, 3)
    loaded = ShardedEngine.load(manifest)
    assert loaded.shard_count == 3
    assert loaded.graph.num_nodes == medium_graph.num_nodes
    assert loaded.graph.num_edges == medium_graph.num_edges
    for query in FIXTURE_QUERIES:
        assert [m.score for m in loaded.top_k(query, 7)] == [
            m.score for m in flat.top_k(query, 7)
        ]


def test_load_is_transparent_via_matchengine(tmp_path, medium_graph, flat):
    manifest = tmp_path / "index.ridx"
    shard_index(medium_graph, manifest, 2)
    engine = MatchEngine.load(manifest)
    assert isinstance(engine, ShardedEngine)
    got, want = engine.top_k("A//B", 5), flat.top_k("A//B", 5)
    assert [m.score for m in got] == [m.score for m in want]
    assert sorted(exact(got)) == sorted(exact(want))


def test_load_rejects_count_mismatch(tmp_path, medium_graph):
    from repro.shard.manifest import _canonical_checksum

    manifest = tmp_path / "index.ridx"
    shard_index(medium_graph, manifest, 3)
    document = json.loads(manifest.read_text())
    document["counts"]["edges"] += 1
    document["checksum"] = _canonical_checksum(document)
    manifest.write_text(json.dumps(document, indent=2, sort_keys=True))
    with pytest.raises(ShardError, match="manifest records"):
        ShardedEngine.load(manifest)


def test_save_index_round_trips(tmp_path, medium_graph):
    sharded = ShardedEngine.from_graph(medium_graph, 3)
    manifest = tmp_path / "saved.ridx"
    document = sharded.save_index(manifest)
    assert document["shard_count"] == 3
    reloaded = ShardedEngine.load(manifest)
    for query in FIXTURE_QUERIES[:2]:
        assert exact(reloaded.top_k(query, 6)) == exact(sharded.top_k(query, 6))


def test_statistics_shape(sharded, medium_graph):
    stats = sharded.statistics()
    assert stats["shard_count"] == sharded.shard_count
    assert stats["graph_nodes"] == medium_graph.num_nodes
    assert stats["owned_nodes"] == medium_graph.num_nodes
    assert len(stats["shards"]) == sharded.shard_count
    spans = stats["spans"]
    assert spans[0][0] == 0 and spans[-1][1] == medium_graph.num_nodes


def test_backend_name_mentions_sharding(sharded):
    assert sharded.backend_name.startswith(f"sharded[{sharded.shard_count}]")


def test_explain_routes_to_owner(sharded):
    plan = sharded.explain("A//B", k=5)
    assert plan is not None
    assert sharded.route("A//B") == (sharded.plan.owner_of("A"),)
