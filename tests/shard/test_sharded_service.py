"""ShardedMatchService: scatter-gather serving, deadlines, worker death.

These tests spawn real worker processes (the ``spawn`` start method,
same as production), so they keep shard counts and graph sizes small —
the point is protocol correctness, not throughput.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.config import EngineConfig
from repro.engine.core import MatchEngine
from repro.exceptions import (
    DeadlineExceededError,
    EngineError,
    ServiceClosedError,
    ServiceError,
    ShardUnavailableError,
)
from repro.service import MatchService, ShardedMatchService
from repro.shard import shard_index
from repro.twig.semantics import ContainmentMatcher
from tests.shard.conftest import FIXTURE_QUERIES, build_fixture_graph

QUERIES = FIXTURE_QUERIES[:3]


@pytest.fixture(scope="module")
def small_graph():
    return build_fixture_graph(nodes=36, labels=6, edges=90, seed=11)


@pytest.fixture(scope="module")
def flat(small_graph):
    return MatchEngine(small_graph)


def scores(matches):
    return [m.score for m in matches]


def test_round_trip_equivalence_and_provenance(small_graph, flat):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        for query in QUERIES:
            response = service.request(query, 6, deadline=60.0)
            assert scores(response.matches) == scores(flat.top_k(query, 6))
            assert response.epoch == 0
            assert response.k == 6
            assert not response.degraded
            assert response.shards_failed == ()
            assert all(0 <= s < 2 for s in response.shards_routed)
        stats = service.statistics()
        assert stats["requests"] == len(QUERIES)
        assert stats["workers_alive"] == 2


def test_submit_and_batch(small_graph, flat):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        futures = [service.submit(query, 4) for query in QUERIES]
        for query, future in zip(QUERIES, futures):
            assert scores(future.result(60).matches) == scores(
                flat.top_k(query, 4)
            )
        batched = service.batch(QUERIES, 4)
        for query, matches in zip(QUERIES, batched):
            assert scores(matches) == scores(flat.top_k(query, 4))


def test_expired_deadline_raises_without_hanging(small_graph):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        service.top_k(QUERIES[0], 3)  # workers warm and healthy
        with pytest.raises(DeadlineExceededError):
            service.request(QUERIES[0], 3, deadline=1e-9)
        # the failed request poisons nothing: the next one answers
        assert service.top_k(QUERIES[0], 3)


def test_cyclic_queries_rejected_before_scatter(small_graph):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        with pytest.raises(EngineError, match="cyclic"):
            service.top_k("graph(a:A, b:B; a-b, b-a)", 5)


def test_worker_death_raises_shard_unavailable(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=2, restart_workers=False
    ) as service:
        victim = service.route(QUERIES[0])[0]
        service._shards[victim].replicas[0].process.terminate()
        service._shards[victim].replicas[0].process.join(timeout=10)
        started = time.monotonic()
        with pytest.raises(ShardUnavailableError):
            service.top_k(QUERIES[0], 5)
        assert time.monotonic() - started < 30, "death must not hang"
        # requests routed to surviving shards keep working
        survivor_query = next(
            (q for q in FIXTURE_QUERIES if victim not in service.route(q)),
            None,
        )
        if survivor_query is not None:
            assert service.top_k(survivor_query, 3) is not None
        stats = service.statistics()
        assert stats["workers_alive"] == 1


def test_worker_death_recovers_with_restart(small_graph, flat):
    with ShardedMatchService(
        small_graph, num_shards=2, restart_workers=True
    ) as service:
        victim = service.route(QUERIES[0])[0]
        service._shards[victim].replicas[0].process.terminate()
        service._shards[victim].replicas[0].process.join(timeout=10)
        got = service.top_k(QUERIES[0], 5)
        assert scores(got) == scores(flat.top_k(QUERIES[0], 5))
        assert service.statistics()["worker_restarts"] == 1


def containment_graph():
    """Labels "A" and "A+X" land on different shards at ``num_shards=4``,
    so an ``A``-rooted containment query scatters to two shards."""
    import random

    from repro.graph.digraph import LabeledDiGraph

    labels = ("A", "A+X", "B", "C")
    graph = LabeledDiGraph()
    for i in range(32):
        graph.add_node(f"v{i}", labels[i % 4])
    rng = random.Random(5)
    names = [f"v{i}" for i in range(32)]
    for _ in range(80):
        tail, head = rng.sample(names, 2)
        graph.add_edge(tail, head, rng.randint(1, 9))
    return graph


def test_degrade_mode_returns_partial_answers():
    config = EngineConfig(label_matcher=ContainmentMatcher())
    with ShardedMatchService(
        containment_graph(), config, num_shards=4,
        on_shard_failure="degrade", restart_workers=False,
    ) as service:
        routed = service.route("A//B")
        assert len(routed) == 2, "containment roots must scatter"
        service._shards[routed[0]].replicas[0].process.terminate()
        service._shards[routed[0]].replicas[0].process.join(timeout=10)
        response = service.request("A//B", 5)
        assert response.degraded
        assert response.shards_failed == (routed[0],)
        assert response.shards_routed == routed
        assert service.statistics()["degraded_responses"] >= 1


def test_error_mode_fails_partial_scatter():
    config = EngineConfig(label_matcher=ContainmentMatcher())
    with ShardedMatchService(
        containment_graph(), config, num_shards=4,
        on_shard_failure="error", restart_workers=False,
    ) as service:
        routed = service.route("A//B")
        service._shards[routed[0]].replicas[0].process.terminate()
        service._shards[routed[0]].replicas[0].process.join(timeout=10)
        with pytest.raises(ShardUnavailableError):
            service.request("A//B", 5)


def test_apply_updates_swaps_all_shards(small_graph):
    with ShardedMatchService(
        small_graph, num_shards=2, update_policy="eager"
    ) as service:
        report = service.apply_updates(
            edges_added=[("v1", "v20")], nodes_added={"v90": "B"}
        )
        assert report["epoch"] == 1
        assert report["shard_count"] == 2
        assert not report["deferred"]
        mutated = small_graph.copy()
        mutated.add_node("v90", "B")
        mutated.add_edge("v1", "v20")
        fresh = MatchEngine(mutated)
        for query in QUERIES:
            assert scores(service.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )
        assert service.request(QUERIES[0], 3).epoch == 1
        with pytest.raises(ServiceError):
            service.apply_updates()  # empty update is refused


def test_apply_updates_delta_path_defers_and_converges(small_graph):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        report = service.apply_updates(edges_added=[("v1", "v20")])
        assert report["deferred"], "small batches take the delta path"
        assert report["epoch"] == 1
        mutated = small_graph.copy()
        mutated.add_edge("v1", "v20")
        fresh = MatchEngine(mutated)
        for query in QUERIES:
            assert scores(service.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )
        assert service.statistics()["delta"]["delta_updates"] == 1
        compacted = service.compact()
        assert compacted["shards_compacted"] == 2
        assert compacted["errors"] == []
        assert service.statistics()["delta"]["compactions"] == 1
        for query in QUERIES:  # still byte-equal after the fold
            assert scores(service.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )


def test_apply_updates_changes_shard_count(small_graph):
    with ShardedMatchService(small_graph, num_shards=2) as service:
        report = service.apply_updates(
            edges_added=[("v2", "v30")], num_shards=3
        )
        assert report["resized"]
        assert report["shard_count"] == 3
        assert service.shard_count == 3
        assert service.statistics()["workers_alive"] == 3
        mutated = small_graph.copy()
        mutated.add_edge("v2", "v30")
        fresh = MatchEngine(mutated)
        for query in QUERIES:
            assert scores(service.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )
        # A pure re-spread (no graph change) shrinks back.
        report = service.apply_updates(num_shards=2)
        assert report["resized"] and report["shard_count"] == 2
        assert service.statistics()["workers_alive"] == 2
        assert service.statistics()["delta"]["shard_count_changes"] == 2
        for query in QUERIES:
            assert scores(service.top_k(query, 6)) == scores(
                fresh.top_k(query, 6)
            )
        with pytest.raises(ServiceError):
            service.apply_updates(num_shards=0)


def test_seeded_interleaved_schedules_match_fresh_rebuild(small_graph):
    """Differential check, sharded at 2 shards: a seeded interleaving of
    delta updates, queries, and compactions keeps every answer equal to
    a fresh flat engine on a shadow graph tracking the same mutations."""
    import random

    rng = random.Random(20250807)
    shadow = small_graph.copy()
    labels = sorted(shadow.labels())
    with ShardedMatchService(small_graph, num_shards=2) as service:
        fresh = MatchEngine(shadow)
        next_node = 100
        for step in range(12):
            op = rng.choice(("update", "query", "query", "compact"))
            if op == "update":
                kind = rng.choice(("add", "remove", "node_add", "relabel"))
                if kind == "add":
                    nodes = sorted(shadow.nodes())
                    tail, head = rng.sample(nodes, 2)
                    if shadow.has_edge(tail, head):
                        shadow.remove_edge(tail, head)
                        service.apply_updates(edges_removed=[(tail, head)])
                    else:
                        weight = rng.randint(1, 4)
                        shadow.add_edge(tail, head, weight)
                        service.apply_updates(
                            edges_added=[(tail, head, weight)]
                        )
                elif kind == "remove":
                    edges = sorted(
                        (t, h) for t, h, _ in shadow.edges()
                    )
                    tail, head = rng.choice(edges)
                    shadow.remove_edge(tail, head)
                    service.apply_updates(edges_removed=[(tail, head)])
                elif kind == "node_add":
                    node = f"nw{next_node}"
                    next_node += 1
                    label = rng.choice(labels)
                    shadow.add_node(node, label)
                    service.apply_updates(nodes_added={node: label})
                else:
                    node = rng.choice(sorted(shadow.nodes()))
                    label = rng.choice(labels)
                    shadow.relabel_node(node, label)
                    service.apply_updates(labels_changed={node: label})
                fresh = MatchEngine(shadow)
            elif op == "compact":
                report = service.compact()
                assert report["errors"] == [], report
            else:
                query = rng.choice(QUERIES)
                assert scores(service.top_k(query, 5)) == scores(
                    fresh.top_k(query, 5)
                ), (step, query)
        for query in QUERIES:
            assert scores(service.top_k(query, 5)) == scores(
                fresh.top_k(query, 5)
            )


def test_from_manifest_and_from_index(tmp_path, small_graph, flat):
    manifest = tmp_path / "index.ridx"
    shard_index(small_graph, manifest, 2)
    with ShardedMatchService.from_manifest(manifest) as service:
        assert service.shard_count == 2
        assert scores(service.top_k(QUERIES[0], 5)) == scores(
            flat.top_k(QUERIES[0], 5)
        )
    via_dispatch = MatchService.from_index(manifest)
    try:
        assert isinstance(via_dispatch, ShardedMatchService)
        assert scores(via_dispatch.top_k(QUERIES[1], 5)) == scores(
            flat.top_k(QUERIES[1], 5)
        )
    finally:
        via_dispatch.close()


def test_closed_service_refuses_requests(small_graph):
    service = ShardedMatchService(small_graph, num_shards=2)
    service.close()
    assert service.closed
    with pytest.raises(ServiceClosedError):
        service.top_k(QUERIES[0], 3)
    with pytest.raises(ServiceClosedError):
        service.submit(QUERIES[0], 3)
    service.close()  # idempotent


def test_workers_are_reaped_on_close(small_graph):
    service = ShardedMatchService(small_graph, num_shards=2)
    processes = [
        worker.process
        for group in service._shards
        for worker in group.replicas
    ]
    service.close()
    for process in processes:
        assert process is None or not process.is_alive()


def test_constructor_validation(small_graph):
    with pytest.raises(ServiceError):
        ShardedMatchService(small_graph, manifest="also-a-manifest")
    with pytest.raises(ServiceError):
        ShardedMatchService(small_graph, on_shard_failure="explode")
    with pytest.raises(ServiceError):
        ShardedMatchService(small_graph, max_workers=0)
