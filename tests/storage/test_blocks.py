"""Tests for the simulated block storage layer."""

import pytest

from repro.exceptions import StorageError
from repro.storage.blocks import BlockTable, TableDirectory
from repro.storage.iostats import IOCounter


class TestBlockTable:
    def make(self, n=10, block_size=4):
        counter = IOCounter()
        table = BlockTable("t", list(range(n)), counter, block_size=block_size)
        return table, counter

    def test_block_count(self):
        table, _ = self.make(10, 4)
        assert table.num_blocks == 3
        assert table.num_entries == 10
        assert len(table) == 10

    def test_empty_table(self):
        table, _ = self.make(0, 4)
        assert table.num_blocks == 0
        assert table.read_all() == ()

    def test_read_block_contents(self):
        table, _ = self.make(10, 4)
        assert table.read_block(0) == (0, 1, 2, 3)
        assert table.read_block(2) == (8, 9)

    def test_read_block_meters(self):
        table, counter = self.make(10, 4)
        table.read_block(1)
        assert counter.blocks_read == 1
        assert counter.entries_read == 4
        table.read_block(2)
        assert counter.blocks_read == 2
        assert counter.entries_read == 6

    def test_read_all(self):
        table, counter = self.make(10, 4)
        assert table.read_all() == tuple(range(10))
        assert counter.blocks_read == 3

    def test_out_of_range(self):
        table, _ = self.make(10, 4)
        with pytest.raises(StorageError):
            table.read_block(3)
        with pytest.raises(StorageError):
            table.read_block(-1)

    def test_bad_block_size(self):
        with pytest.raises(StorageError):
            BlockTable("t", [1], IOCounter(), block_size=0)

    def test_peek_unmetered(self):
        table, counter = self.make(10, 4)
        assert table.peek_unmetered() == tuple(range(10))
        assert counter.blocks_read == 0


class TestTableDirectory:
    def test_create_and_open(self):
        d = TableDirectory(block_size=2)
        d.create("a", [1, 2, 3])
        table = d.open("a")
        assert table.num_entries == 3
        assert d.counter.tables_opened == 1

    def test_open_missing_is_empty(self):
        d = TableDirectory()
        table = d.open("ghost")
        assert table.num_entries == 0
        assert not d.exists("ghost")

    def test_totals(self):
        d = TableDirectory(block_size=2)
        d.create("a", [1, 2, 3])
        d.create("b", [1])
        assert d.total_entries() == 4
        assert d.total_blocks() == 3
        assert d.names() == ["a", "b"]

    def test_shared_counter(self):
        counter = IOCounter()
        d = TableDirectory(counter=counter)
        d.create("a", [1, 2])
        d.open("a").read_all()
        assert counter.blocks_read == 1
        assert counter.reads_by_table["a"] == 1
