"""Format-level tests for the binary ``.ridx`` disk index.

Engine-level round trips live in ``tests/engine/test_binary_persistence``;
this file exercises the file format itself: header/section parsing,
truncation and corruption handling (always a clean
:class:`IndexFormatError`, never garbage reads), checksum coverage, and
the type-tagged identity pools.
"""

import shutil

import pytest

from repro.engine import MatchEngine
from repro.exceptions import IndexFormatError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryTree
from repro.io import sniff_index_format
from repro.storage.diskindex import (
    DiskIndex,
    encode_identity_pool,
    sniff_is_binary_index,
)


@pytest.fixture
def graph():
    return graph_from_edges(
        {"v1": "a", "v2": "b", "v3": "b", "v4": "c", "v5": "c"},
        [
            ("v1", "v2", 1), ("v1", "v3", 2), ("v2", "v4", 1),
            ("v3", "v5", 1), ("v4", "v5", 3),
        ],
    )


@pytest.fixture
def query():
    return QueryTree({"u1": "a", "u2": "b"}, [("u1", "u2")])


@pytest.fixture
def index_path(tmp_path, graph):
    path = tmp_path / "index.ridx"
    MatchEngine(graph, backend="full").save_index(path)
    return path


class TestLayout:
    def test_sections_and_meta(self, index_path):
        disk = DiskIndex(index_path)
        names = disk.section_names()
        for required in ("meta", "nodes.blob", "labels.blob", "csr.oo",
                         "rows.tgt", "ltab.dir"):
            assert required in names
        assert disk.meta["backend"] == "full"
        assert disk.meta["counts"]["nodes"] == 5
        assert disk.mapped_bytes == index_path.stat().st_size

    def test_full_verify_passes_on_pristine_file(self, index_path):
        DiskIndex(index_path).verify()

    def test_sniffing(self, index_path, tmp_path):
        assert sniff_is_binary_index(index_path)
        assert sniff_index_format(index_path) == "binary"
        other = tmp_path / "doc.json"
        other.write_text("{}")
        assert not sniff_is_binary_index(other)
        assert sniff_index_format(other) == "json"
        assert not sniff_is_binary_index(tmp_path / "missing.ridx")

    def test_missing_section_is_a_clean_error(self, index_path):
        disk = DiskIndex(index_path)
        with pytest.raises(IndexFormatError, match="missing required section"):
            disk.raw("no.such")


class TestTruncation:
    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.95])
    def test_truncated_file_raises_cleanly(self, tmp_path, index_path,
                                           keep_fraction):
        data = index_path.read_bytes()
        stunted = tmp_path / "stunted.ridx"
        stunted.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(IndexFormatError):
            DiskIndex(stunted)

    def test_truncated_file_fails_engine_load_cleanly(self, tmp_path,
                                                      index_path):
        data = index_path.read_bytes()
        stunted = tmp_path / "stunted.ridx"
        stunted.write_bytes(data[: len(data) // 2])
        with pytest.raises(IndexFormatError):
            MatchEngine.load(stunted)

    def test_trailing_garbage_detected(self, tmp_path, index_path):
        bloated = tmp_path / "bloated.ridx"
        bloated.write_bytes(index_path.read_bytes() + b"\0" * 64)
        with pytest.raises(IndexFormatError, match="truncated|bytes"):
            DiskIndex(bloated)


class TestCorruption:
    def _corrupt_section(self, tmp_path, index_path, name, position=0):
        disk = DiskIndex(index_path)
        offset, length, _crc = disk._sections[name]
        assert length > position
        target = tmp_path / f"corrupt-{name.replace('.', '-')}.ridx"
        shutil.copy(index_path, target)
        data = bytearray(target.read_bytes())
        data[offset + position] ^= 0xFF
        target.write_bytes(bytes(data))
        return target

    def test_bad_magic(self, tmp_path, index_path):
        data = bytearray(index_path.read_bytes())
        data[0] ^= 0xFF
        bad = tmp_path / "badmagic.ridx"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="bad magic"):
            DiskIndex(bad)
        # Non-magic files fall through to the JSON reader, which has its
        # own clean failure for non-JSON bytes.
        assert sniff_index_format(bad) == "json"

    def test_unsupported_version(self, tmp_path, index_path):
        data = bytearray(index_path.read_bytes())
        import struct
        import zlib
        struct.pack_into("<H", data, 8, 99)  # version field
        struct.pack_into("<I", data, 36, zlib.crc32(bytes(data[:36])))
        bad = tmp_path / "future.ridx"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="unsupported binary index version"):
            DiskIndex(bad)

    def test_structural_corruption_caught_at_open(self, tmp_path, index_path):
        target = self._corrupt_section(tmp_path, index_path, "nodes.blob")
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            DiskIndex(target)

    def test_header_corruption_caught_at_open(self, tmp_path, index_path):
        data = bytearray(index_path.read_bytes())
        data[20] ^= 0xFF  # inside table_offset
        bad = tmp_path / "badheader.ridx"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError):
            DiskIndex(bad)

    def test_lazy_section_corruption_caught_by_verify(self, tmp_path,
                                                      index_path):
        # Runs untouched at open are deliberately not checksummed there
        # (that would fault in every page); verify() covers them.
        target = self._corrupt_section(tmp_path, index_path, "ltab.dists")
        disk = DiskIndex(target)  # opens fine
        with pytest.raises(IndexFormatError, match="ltab.dists"):
            disk.verify()

    def test_pll_corruption_caught_at_open(self, tmp_path, graph):
        # The 2-hop labels are decoded eagerly at open, so — unlike the
        # closure runs — they must be CRC-checked eagerly too: corrupted
        # distances must never silently reach a query.
        path = tmp_path / "pll.ridx"
        MatchEngine(graph, backend="pll").save_index(path)
        target = self._corrupt_section(tmp_path, path, "pll.din")
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            DiskIndex(target)
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            MatchEngine.load(target)

    def test_corrupt_meta_json(self, tmp_path, index_path):
        target = self._corrupt_section(tmp_path, index_path, "meta",
                                       position=1)
        with pytest.raises(IndexFormatError):
            DiskIndex(target)

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.ridx"
        empty.touch()
        with pytest.raises(IndexFormatError):
            DiskIndex(empty)


class TestIdentityPools:
    def test_str_and_int_round_trip(self, tmp_path, query):
        graph = graph_from_edges(
            {0: "a", 1: "b", "two": "b", 3: "c"},
            [(0, 1), (0, "two"), (1, 3)],
        )
        path = tmp_path / "mixed.ridx"
        MatchEngine(graph, backend="full").save_index(path)
        loaded = MatchEngine.load(path)
        assert set(loaded.graph.nodes()) == {0, 1, "two", 3}
        assert loaded.graph.label("two") == "b"

    @pytest.mark.parametrize("bad_id", [True, 2.5, ("a", 1), frozenset()])
    def test_unsupported_id_types_raise_loudly(self, tmp_path, bad_id):
        graph = graph_from_edges({bad_id: "a", "x": "b"}, [(bad_id, "x")])
        engine = MatchEngine(graph, backend="full")
        with pytest.raises(IndexFormatError, match="str and int identities"):
            engine.save_index(tmp_path / "bad.ridx")

    def test_encode_pool_tags(self):
        offsets, tags, blob = encode_identity_pool(["ab", 42, -7], "node id")
        assert list(tags) == [0, 1, 1]
        assert bytes(blob) == b"ab42-7"
        assert list(offsets) == [0, 2, 4, 6]
