"""Tests for I/O counters and the cost model."""

import pytest

from repro.storage.iostats import IOCostModel, IOCounter


class TestIOCounter:
    def test_record_and_reset(self):
        c = IOCounter()
        c.record_read("t1", 5)
        c.record_read("t1", 3)
        c.record_read("t2", 1)
        c.record_open()
        assert c.blocks_read == 3
        assert c.entries_read == 9
        assert c.tables_opened == 1
        assert c.reads_by_table == {"t1": 2, "t2": 1}
        c.reset()
        assert c.blocks_read == 0
        assert c.reads_by_table == {}

    def test_snapshot_is_independent(self):
        c = IOCounter()
        c.record_read("t", 2)
        snap = c.snapshot()
        c.record_read("t", 2)
        assert snap.blocks_read == 1
        assert c.blocks_read == 2

    def test_delta_since(self):
        c = IOCounter()
        c.record_read("t", 2)
        snap = c.snapshot()
        c.record_read("t", 4)
        c.record_open()
        delta = c.delta_since(snap)
        assert delta.blocks_read == 1
        assert delta.entries_read == 4
        assert delta.tables_opened == 1


class TestCostModel:
    def test_io_seconds(self):
        c = IOCounter()
        for _ in range(10):
            c.record_read("t", 1)
        c.record_open()
        model = IOCostModel(seconds_per_block=0.001, seconds_per_open=0.01)
        assert model.io_seconds(c) == pytest.approx(0.02)

    def test_zero_traffic(self):
        assert IOCostModel().io_seconds(IOCounter()) == 0.0
