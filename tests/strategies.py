"""Shared Hypothesis strategies for the whole test suite.

One home for the random-instance machinery that several suites need:
labeled digraphs (unit and weighted), label maps, query trees with mixed
``//``/``/`` axes and optional wildcards, and the key/entry lists the
slot tests exercise.  Import from tests as ``from tests.strategies
import ...``.

``FUZZ_EXAMPLES`` is the per-test example budget of the fuzz suites;
the nightly CI job raises it via the ``REPRO_FUZZ_EXAMPLES`` environment
variable without touching the tests.
"""

from __future__ import annotations

import os

from hypothesis import assume
from hypothesis import strategies as st

from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.query import WILDCARD, EdgeType, QueryTree

#: Example budget for the property/fuzz suites (nightly CI raises it).
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "60"))

#: Small label alphabet: few labels => dense candidate sets => the
#: enumeration machinery actually gets exercised.
DEFAULT_ALPHABET = ("A", "B", "C", "D", "E")


@st.composite
def label_maps(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 12,
    alphabet: tuple = DEFAULT_ALPHABET,
) -> dict:
    """A node-id -> label mapping over integer node ids."""
    count = draw(st.integers(min_nodes, max_nodes))
    labels = draw(
        st.lists(st.sampled_from(alphabet), min_size=count, max_size=count)
    )
    return dict(enumerate(labels))


@st.composite
def graphs(
    draw,
    min_nodes: int = 4,
    max_nodes: int = 12,
    max_edges: int = 32,
    alphabet: tuple = DEFAULT_ALPHABET,
    weighted: bool = False,
    max_weight: int = 5,
) -> LabeledDiGraph:
    """A random labeled digraph, natively generated (so shrinking works).

    Nodes are integers, labels come from ``alphabet``, edges are drawn
    as a unique subset of all ordered pairs; ``weighted=True`` draws an
    integer weight in ``[1, max_weight]`` per edge (unit otherwise).
    """
    nodes = draw(label_maps(min_nodes=min_nodes, max_nodes=max_nodes, alphabet=alphabet))
    ids = sorted(nodes)
    pairs = [(t, h) for t in ids for h in ids if t != h]
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=min(3, len(pairs)),
            max_size=min(max_edges, len(pairs)),
            unique=True,
        )
    )
    if weighted:
        weights = draw(
            st.lists(
                st.integers(1, max_weight),
                min_size=len(chosen),
                max_size=len(chosen),
            )
        )
        edges = [(t, h, w) for (t, h), w in zip(chosen, weights)]
    else:
        edges = chosen
    return graph_from_edges(nodes, edges)


def weighted_graphs(**kwargs) -> st.SearchStrategy:
    """Shorthand for :func:`graphs` with random positive integer weights."""
    kwargs.setdefault("weighted", True)
    return graphs(**kwargs)


@st.composite
def query_trees(
    draw,
    labels,
    max_size: int = 5,
    direct_edges: bool = True,
    wildcards: bool = False,
) -> QueryTree:
    """A random query tree whose labels are drawn (distinct) from ``labels``.

    Nodes are ``0..size-1`` with node ``i``'s parent drawn among
    ``0..i-1`` (always a valid rooted tree).  Edges are mostly ``//``
    with occasional ``/`` when ``direct_edges``; ``wildcards`` allows
    ``*`` at non-root positions.  Labels stay distinct — the Section 3/4
    core algorithms assume distinct non-wildcard labels.
    """
    pool = sorted(set(labels), key=repr)
    if len(pool) < 2:
        raise ValueError("query_trees needs at least 2 distinct labels")
    size = draw(st.integers(2, max(2, min(max_size, len(pool)))))
    chosen = list(draw(st.permutations(pool)))[:size]
    if wildcards:
        for position in range(1, size):
            if draw(st.booleans()) and draw(st.booleans()):  # ~25%
                chosen[position] = WILDCARD
    axis_pool = (
        [EdgeType.DESCENDANT] * 3 + [EdgeType.CHILD]
        if direct_edges
        else [EdgeType.DESCENDANT]
    )
    edges = []
    for child in range(1, size):
        parent = draw(st.integers(0, child - 1))
        axis = draw(st.sampled_from(axis_pool))
        edges.append((parent, child, axis))
    return QueryTree(dict(enumerate(chosen)), edges)


@st.composite
def graph_and_query(
    draw,
    max_query_size: int = 4,
    direct_edges: bool = True,
    wildcards: bool = False,
    **graph_kwargs,
) -> tuple:
    """A ``(graph, query_tree)`` pair with the query over the graph's labels."""
    graph = draw(graphs(**graph_kwargs))
    assume(len(graph.labels()) >= 2)
    query = draw(
        query_trees(
            graph.labels(),
            max_size=max_query_size,
            direct_edges=direct_edges,
            wildcards=wildcards,
        )
    )
    return graph, query


# ----------------------------------------------------------------------
# Slot-structure strategies (tests/runtime)
# ----------------------------------------------------------------------


def slot_keys(max_key: int = 50, max_size: int = 30) -> st.SearchStrategy:
    """Non-empty key lists for static-slot rank properties."""
    return st.lists(st.integers(0, max_key), min_size=1, max_size=max_size)


def keyed_entries(
    max_key: int = 20, max_node: int = 10, max_size: int = 40
) -> st.SearchStrategy:
    """Non-empty ``(key, node)`` pair lists for dynamic-slot properties."""
    return st.lists(
        st.tuples(st.integers(0, max_key), st.integers(0, max_node)),
        min_size=1,
        max_size=max_size,
    )
