"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryGraph, QueryTree
from repro.io import save_graph_tsv, save_query


@pytest.fixture
def graph_file(tmp_path):
    graph = graph_from_edges(
        {"a0": "a", "b0": "b", "b1": "b", "c0": "c"},
        [("a0", "b0"), ("a0", "b1", 2), ("b0", "c0"), ("b1", "c0")],
    )
    path = tmp_path / "graph.tsv"
    save_graph_tsv(graph, path)
    return path


@pytest.fixture
def tree_query_file(tmp_path):
    query = QueryTree({"r": "a", "m": "b", "l": "c"}, [("r", "m"), ("m", "l")])
    path = tmp_path / "query.json"
    save_query(query, path)
    return path


@pytest.fixture
def graph_query_file(tmp_path):
    query = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
    path = tmp_path / "qg.json"
    save_query(query, path)
    return path


class TestMatch:
    def test_outputs_matches(self, graph_file, tree_query_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "-k", "5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "matches"
        scores = [m["score"] for m in payload["matches"]]
        assert scores == [2.0, 3.0]

    @pytest.mark.parametrize("alg", ["dp-b", "dp-p", "topk", "topk-en"])
    def test_all_algorithms(self, graph_file, tree_query_file, capsys, alg):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--algorithm", alg,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_graph_query_routes_to_kgpm(self, graph_file, graph_query_file, capsys):
        """`match` is the universal entry point: cyclic patterns run too."""
        code = main(
            ["match", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["matches"], "expected at least one pattern match"
        assert "mtree+" in captured.err

    def test_needs_graph_or_index(self, tree_query_file, capsys):
        code = main(["match", "--query", str(tree_query_file)])
        assert code == 2
        assert "--graph or --load-index" in capsys.readouterr().err

    def test_graph_and_index_conflict(self, tmp_path, graph_file,
                                      tree_query_file, capsys):
        index_path = tmp_path / "g.idx.json"
        assert main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--save-index", str(index_path),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--load-index", str(index_path),
                "--query", str(tree_query_file),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err
        code = main(
            [
                "match",
                "--load-index", str(index_path),
                "--backend", "pll",
                "--query", str(tree_query_file),
            ]
        )
        assert code == 2
        assert "determined by the loaded index" in capsys.readouterr().err

    def test_corrupt_index_clean_error(self, tmp_path, tree_query_file, capsys):
        bogus = tmp_path / "corrupt.idx.json"
        bogus.write_text("{not json")
        code = main(
            ["match", "--load-index", str(bogus), "--query", str(tree_query_file)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_constrained_backend_uses_query_as_workload(
        self, graph_file, tree_query_file, capsys
    ):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--backend", "constrained",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    @pytest.mark.parametrize("backend", ["full", "ondemand", "hybrid", "pll"])
    def test_backend_selection(self, graph_file, tree_query_file, capsys, backend):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--backend", backend,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_auto_algorithm_with_explain(self, graph_file, tree_query_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--algorithm", "auto",
                "--explain",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "QueryPlan" in captured.err
        payload = json.loads(captured.out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_save_then_load_index(self, tmp_path, graph_file, tree_query_file,
                                  capsys):
        index_path = tmp_path / "g.idx.json"
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--save-index", str(index_path),
            ]
        )
        assert code == 0
        assert index_path.exists()
        capsys.readouterr()
        code = main(
            [
                "match",
                "--load-index", str(index_path),
                "--query", str(tree_query_file),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]


class TestMatchDsl:
    """`--query` accepts DSL text directly (the declarative surface)."""

    def test_dsl_query(self, graph_file, capsys):
        code = main(
            ["match", "--graph", str(graph_file), "--query", "a//b//c", "-k", "5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_dsl_matches_json_query(self, graph_file, tree_query_file, capsys):
        main(["match", "--graph", str(graph_file), "--query", str(tree_query_file)])
        json_scores = [
            m["score"] for m in json.loads(capsys.readouterr().out)["matches"]
        ]
        main(["match", "--graph", str(graph_file), "--query", "a//b//c"])
        dsl_scores = [
            m["score"] for m in json.loads(capsys.readouterr().out)["matches"]
        ]
        assert dsl_scores == json_scores

    def test_direct_edge_dsl(self, graph_file, capsys):
        code = main(["match", "--graph", str(graph_file), "--query", "a/b/c"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # every closure pair here is also a direct edge in the fixture
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_explain_shows_semantics(self, graph_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", "a//b[c]",
                "--explain",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "semantics:" in err
        assert "matcher=equality" in err
        assert "execution tier:" in err

    def test_cyclic_dsl(self, graph_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", "graph(x:a, y:b, z:c; x-y, y-z, z-x)",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["matches"]
        assert "mtree+" in captured.err

    @pytest.mark.parametrize(
        "bad",
        ["a//", "a[[b]", "a//b]", "a@b", "{unclosed", "a//b[", "graph(x:a; x-y)"],
    )
    def test_malformed_dsl_exits_2_with_caret(self, graph_file, capsys, bad):
        """Satellite: malformed --query exits 2 with a caret, no traceback."""
        code = main(["match", "--graph", str(graph_file), "--query", bad])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid query syntax" in err
        assert "^" in err
        assert "Traceback" not in err

    def test_missing_json_file_clean_error(self, graph_file, capsys):
        code = main(
            ["match", "--graph", str(graph_file), "--query", "no/such/q.json"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_wildcard_root_clean_error(self, graph_file, capsys):
        code = main(["match", "--graph", str(graph_file), "--query", "*//a"])
        assert code == 2
        err = capsys.readouterr().err
        assert "wildcard roots" in err
        assert "Traceback" not in err

    def test_cyclic_algorithm_on_tree_clean_error(self, graph_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", "a//b",
                "--algorithm", "mtree+",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "only applies to cyclic" in err
        assert "Traceback" not in err

    def test_tree_algorithm_on_cyclic_clean_error(self, graph_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", "graph(x:a, y:b; x-y)",
                "--algorithm", "dp-p",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot execute a cyclic pattern" in err
        assert "Traceback" not in err

    def test_constrained_backend_with_containment_query(self, tmp_path, capsys):
        """The one-shot constrained workload honors compiled ~ semantics."""
        from repro.graph.digraph import graph_from_edges

        graph = graph_from_edges(
            {"r": "root", "s": "db+systems", "t": "ml"},
            [("r", "s"), ("r", "t")],
        )
        path = tmp_path / "tok.tsv"
        save_graph_tsv(graph, path)
        code = main(
            [
                "match",
                "--graph", str(path),
                "--query", "root//~db",
                "--backend", "constrained",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["assignment"]["n1"] for m in payload["matches"]] == ["s"]


class TestQuerySubcommand:
    def test_check_ok(self, capsys):
        code = main(["query", "check", "A//B[C][*]/D"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok: A//B[C][*]/D" in out
        assert "5 nodes" in out

    def test_check_syntax_error(self, capsys):
        code = main(["query", "check", "A//B[[C]"])
        assert code == 2
        err = capsys.readouterr().err
        assert "^" in err
        assert "Traceback" not in err

    def test_show_tree(self, capsys):
        code = main(["query", "show", "A//~db+systems[/X]"])
        assert code == 0
        out = capsys.readouterr().out
        assert "canonical: A//~db+systems/X" in out
        assert "matcher=containment" in out
        assert "direct edges=1" in out

    def test_show_graph(self, capsys):
        code = main(["query", "show", "graph(a:A, b:B; a-b)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cyclic pattern" in out
        assert "edge a -- b" in out

    def test_show_compiled_prints_opcode_listing(self, capsys):
        code = main(["query", "show", "A//B/C", "--compiled"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel:" in out
        for opcode in ("SCAN", "PROBE", "DIRECT", "ACCUM", "ROOTS", "PUSH"):
            assert opcode in out, opcode

    def test_show_compiled_reports_interpreted_for_cyclic(self, capsys):
        code = main(
            ["query", "show", "graph(a:A, b:B; a-b, b-a)", "--compiled"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel:    interpreted" in out
        assert "kGPM" in out

    def test_check_json_file(self, tree_query_file, capsys):
        code = main(["query", "check", str(tree_query_file)])
        assert code == 0
        assert "tree" in capsys.readouterr().out


class TestGpm:
    def test_cycle_query(self, graph_file, graph_query_file, capsys):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches"], "expected at least one pattern match"

    def test_rejects_tree_query(self, graph_file, tree_query_file):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(tree_query_file)]
        )
        assert code == 2

    def test_containment_labels_honored(self, tmp_path, capsys):
        """gpm compiles ~ labels with the containment matcher (regression:
        it used to drop the compiled matcher and return no matches)."""
        from repro.graph.digraph import graph_from_edges

        graph = graph_from_edges(
            {"x": "hub", "y": "db+systems"},
            [("x", "y")],
        )
        path = tmp_path / "tok.tsv"
        save_graph_tsv(graph, path)
        code = main(
            [
                "gpm",
                "--graph", str(path),
                "--query", "graph(a:hub, b:~db; a-b)",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["assignment"]["b"] for m in payload["matches"]] == ["y"]


class TestStats:
    def test_reports_closure(self, graph_file, capsys):
        code = main(["stats", "--graph", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "closure pairs" in out
        assert "theta" in out


class TestIndex:
    def test_build_and_query(self, tmp_path, graph_file, tree_query_file, capsys):
        index_path = tmp_path / "built.idx.json"
        code = main(
            [
                "index",
                "--graph", str(graph_file),
                "--backend", "pll",
                "--out", str(index_path),
            ]
        )
        assert code == 0
        assert "saved to" in capsys.readouterr().err
        code = main(
            ["match", "--load-index", str(index_path), "--query", str(tree_query_file)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]


class TestGenerate:
    @pytest.mark.parametrize("family", ["citation", "powerlaw", "uniform"])
    def test_generates_loadable_graph(self, tmp_path, capsys, family):
        out = tmp_path / "gen.tsv"
        code = main(
            [
                "generate",
                "--family", family,
                "--nodes", "60",
                "--labels", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        from repro.io import load_graph_tsv

        graph = load_graph_tsv(out)
        assert graph.num_nodes == 60


class TestServeBench:
    def test_synthetic_smoke(self, capsys):
        code = main(
            [
                "serve-bench",
                "--nodes", "60",
                "--requests", "10",
                "--num-queries", "3",
                "-k", "3",
                "--workers", "1,2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warm service speedup" in out
        assert "worker scaling" in out

    def test_runs_on_a_graph_file(self, graph_file, capsys):
        code = main(
            [
                "serve-bench",
                "--graph", str(graph_file),
                "--requests", "6",
                "--num-queries", "2",
                "-k", "2",
                "--workers", "1",
            ]
        )
        assert code == 0
        assert "serving benchmark: 4 nodes" in capsys.readouterr().out

    def test_bad_workers_rejected(self, capsys):
        assert main(["serve-bench", "--workers", "1,x"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err
        assert main(["serve-bench", "--workers", "0"]) == 2
        assert "positive integers" in capsys.readouterr().err

    def test_nonpositive_requests_exit_cleanly(self, capsys):
        assert main(["serve-bench", "--nodes", "40", "--requests", "0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestShardCli:
    @pytest.fixture
    def manifest_path(self, tmp_path, graph_file):
        path = tmp_path / "sharded.ridx"
        code = main(
            [
                "index",
                "--graph", str(graph_file),
                "--shards", "2",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_build_reports_shards(self, tmp_path, graph_file, capsys):
        manifest_path = tmp_path / "sharded.ridx"
        code = main(
            [
                "index",
                "--graph", str(graph_file),
                "--shards", "2",
                "--out", str(manifest_path),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "built 2 shards" in err
        assert str(manifest_path) in err
        siblings = sorted(p.name for p in manifest_path.parent.iterdir())
        assert "sharded.shard-00.ridx" in siblings
        assert "sharded.shard-01.ridx" in siblings

    def test_match_loads_manifest_transparently(
        self, manifest_path, graph_file, tree_query_file, capsys
    ):
        code = main(
            [
                "match",
                "--load-index", str(manifest_path),
                "--query", str(tree_query_file),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]
        assert "sharded[2]" in captured.err

    def test_shard_info(self, manifest_path, capsys):
        capsys.readouterr()
        assert main(["shard", "info", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "repro-shard-manifest" in out
        assert "shard  0:" in out
        assert "use --verify" in out
        assert main(["shard", "info", str(manifest_path), "--verify"]) == 0
        assert "SHA-256 verified" in capsys.readouterr().out

    def test_shard_info_rejects_tampering(self, manifest_path, capsys):
        document = json.loads(manifest_path.read_text())
        document["epoch"] = 7
        manifest_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(["shard", "info", str(manifest_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "checksum" in err

    def test_bad_shard_flags_exit_2(self, tmp_path, graph_file, capsys):
        out = tmp_path / "x.ridx"
        assert main(
            ["index", "--graph", str(graph_file), "--shards", "0",
             "--out", str(out)]
        ) == 2
        assert "positive" in capsys.readouterr().err
        assert main(
            ["index", "--graph", str(graph_file), "--shards", "2",
             "--format", "json", "--out", str(out)]
        ) == 2
        assert "binary-only" in capsys.readouterr().err


class TestDeltaCli:
    @pytest.fixture
    def durable_family(self, tmp_path, graph_file):
        """A binary base index plus a WAL holding one pending record."""
        from repro.delta import WriteAheadLog, records_from_updates
        from repro.engine import MatchEngine
        from repro.io import load_graph_tsv

        base = tmp_path / "index.ridx"
        engine = MatchEngine(load_graph_tsv(graph_file))
        engine.save_index(base, format="binary")
        wal_path = tmp_path / "index.wal"
        with WriteAheadLog(wal_path) as wal:
            wal.append(records_from_updates(edges_added=[("a0", "c0", 1)]))
        return base, wal_path

    def test_delta_info_reads_a_wal(self, durable_family, capsys):
        _base, wal_path = durable_family
        assert main(["delta", "info", str(wal_path)]) == 0
        out = capsys.readouterr().out
        assert "generation: 0" in out
        assert "records:    1" in out
        assert "none (segment is clean)" in out
        assert '"op": "edge_add"' in out

    def test_delta_info_reports_torn_tails(self, durable_family, capsys):
        _base, wal_path = durable_family
        with open(wal_path, "ab") as handle:
            handle.write(b"\xff" * 5)
        assert main(["delta", "info", str(wal_path)]) == 0
        out = capsys.readouterr().out
        assert "5 trailing bytes" in out

    def test_compact_folds_the_wal_into_a_generation(
        self, durable_family, capsys
    ):
        base, wal_path = durable_family
        assert main(
            ["compact", "--index", str(base), "--wal", str(wal_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "compacted 1 records" in err
        assert "generation 1" in err
        assert base.with_name("index.gen-0001.ridx").exists()
        # The family is now inspectable through `delta info`.
        assert main(["delta", "info", str(base)]) == 0
        out = capsys.readouterr().out
        assert "current:    generation 1" in out
        assert "gen    1: index.gen-0001.ridx" in out
        # Nothing pending anymore: the second compact is a no-op...
        assert main(
            ["compact", "--index", str(base), "--wal", str(wal_path)]
        ) == 0
        assert "nothing to compact" in capsys.readouterr().err
        # ...unless forced.
        assert main(
            ["compact", "--index", str(base), "--wal", str(wal_path),
             "--force"]
        ) == 0
        assert "generation 2" in capsys.readouterr().err

    def test_delta_info_rejects_unrelated_files(self, graph_file, capsys):
        assert main(["delta", "info", str(graph_file)]) == 2
        assert "neither a WAL segment" in capsys.readouterr().err


class TestLint:
    """`repro lint` exit codes: 0 clean / 1 findings / 2 usage errors —
    the uniform contract the module docstring documents (shared with
    `bench validate`, pinned in tests/bench/test_suite.py)."""

    @pytest.fixture
    def dirty_repo(self, tmp_path):
        """A miniature repo whose one module violates RL002."""
        (tmp_path / "config").mkdir()
        (tmp_path / "config" / "layers.toml").write_text(
            '[[package]]\nname = "repro.exceptions"\ndeps = []\n\n'
            '[[package]]\nname = "repro.storage"\n'
            'deps = ["repro.exceptions"]\n'
        )
        package = tmp_path / "src" / "repro" / "storage"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "blocks.py").write_text(
            "def check(size):\n"
            "    if size < 0:\n"
            "        raise ValueError('negative')\n"
        )
        return tmp_path

    def test_clean_repo_exits_0(self, monkeypatch, capsys):
        import repro

        root = __import__("pathlib").Path(repro.__file__).parents[2]
        monkeypatch.chdir(root)
        assert main(["lint"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_findings_exit_1(self, dirty_repo, capsys):
        assert main(["lint", "--root", str(dirty_repo)]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out and "1 errors" in out

    def test_unknown_rule_exits_2(self, dirty_repo, capsys):
        assert main(["lint", "--root", str(dirty_repo), "--rule", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_root_exits_2(self, tmp_path, capsys):
        assert main(["lint", "--root", str(tmp_path / "ghost")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_rule_filter_narrows_the_run(self, dirty_repo, capsys):
        assert main(["lint", "--root", str(dirty_repo), "--rule", "RL001"]) == 0
        assert "1 rules" in capsys.readouterr().out

    def test_json_format(self, dirty_repo, capsys):
        assert main(["lint", "--root", str(dirty_repo), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "reprolint-report"
        assert document["summary"]["active"] == 1

    def test_baseline_lifecycle_through_the_cli(self, dirty_repo, capsys):
        baseline = dirty_repo / "lint-baseline.json"
        # --update-baseline without --baseline is a usage error.
        assert main(["lint", "--root", str(dirty_repo),
                     "--update-baseline"]) == 2
        capsys.readouterr()
        # Write the baseline, then the gate goes green.
        assert main(["lint", "--root", str(dirty_repo),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--root", str(dirty_repo),
                     "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Fixing the violation turns the entry stale -> exit 1 until the
        # baseline is regenerated.
        blocks = dirty_repo / "src" / "repro" / "storage" / "blocks.py"
        blocks.write_text("def check(size):\n    return size\n")
        assert main(["lint", "--root", str(dirty_repo),
                     "--baseline", str(baseline)]) == 1
        assert "stale baseline" in capsys.readouterr().out
