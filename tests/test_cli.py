"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryGraph, QueryTree
from repro.io import save_graph_tsv, save_query


@pytest.fixture
def graph_file(tmp_path):
    graph = graph_from_edges(
        {"a0": "a", "b0": "b", "b1": "b", "c0": "c"},
        [("a0", "b0"), ("a0", "b1", 2), ("b0", "c0"), ("b1", "c0")],
    )
    path = tmp_path / "graph.tsv"
    save_graph_tsv(graph, path)
    return path


@pytest.fixture
def tree_query_file(tmp_path):
    query = QueryTree({"r": "a", "m": "b", "l": "c"}, [("r", "m"), ("m", "l")])
    path = tmp_path / "query.json"
    save_query(query, path)
    return path


@pytest.fixture
def graph_query_file(tmp_path):
    query = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
    path = tmp_path / "qg.json"
    save_query(query, path)
    return path


class TestMatch:
    def test_outputs_matches(self, graph_file, tree_query_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "-k", "5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "matches"
        scores = [m["score"] for m in payload["matches"]]
        assert scores == [2.0, 3.0]

    @pytest.mark.parametrize("alg", ["dp-b", "dp-p", "topk", "topk-en"])
    def test_all_algorithms(self, graph_file, tree_query_file, capsys, alg):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--algorithm", alg,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_rejects_graph_query(self, graph_file, graph_query_file, capsys):
        code = main(
            ["match", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 2

    def test_needs_graph_or_index(self, tree_query_file, capsys):
        code = main(["match", "--query", str(tree_query_file)])
        assert code == 2
        assert "--graph or --load-index" in capsys.readouterr().err

    def test_graph_and_index_conflict(self, tmp_path, graph_file,
                                      tree_query_file, capsys):
        index_path = tmp_path / "g.idx.json"
        assert main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--save-index", str(index_path),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--load-index", str(index_path),
                "--query", str(tree_query_file),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err
        code = main(
            [
                "match",
                "--load-index", str(index_path),
                "--backend", "pll",
                "--query", str(tree_query_file),
            ]
        )
        assert code == 2
        assert "determined by the loaded index" in capsys.readouterr().err

    def test_corrupt_index_clean_error(self, tmp_path, tree_query_file, capsys):
        bogus = tmp_path / "corrupt.idx.json"
        bogus.write_text("{not json")
        code = main(
            ["match", "--load-index", str(bogus), "--query", str(tree_query_file)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_constrained_backend_uses_query_as_workload(
        self, graph_file, tree_query_file, capsys
    ):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--backend", "constrained",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    @pytest.mark.parametrize("backend", ["full", "ondemand", "hybrid", "pll"])
    def test_backend_selection(self, graph_file, tree_query_file, capsys, backend):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--backend", backend,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_auto_algorithm_with_explain(self, graph_file, tree_query_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--algorithm", "auto",
                "--explain",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "QueryPlan" in captured.err
        payload = json.loads(captured.out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_save_then_load_index(self, tmp_path, graph_file, tree_query_file,
                                  capsys):
        index_path = tmp_path / "g.idx.json"
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--save-index", str(index_path),
            ]
        )
        assert code == 0
        assert index_path.exists()
        capsys.readouterr()
        code = main(
            [
                "match",
                "--load-index", str(index_path),
                "--query", str(tree_query_file),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]


class TestGpm:
    def test_cycle_query(self, graph_file, graph_query_file, capsys):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches"], "expected at least one pattern match"

    def test_rejects_tree_query(self, graph_file, tree_query_file):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(tree_query_file)]
        )
        assert code == 2


class TestStats:
    def test_reports_closure(self, graph_file, capsys):
        code = main(["stats", "--graph", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "closure pairs" in out
        assert "theta" in out


class TestIndex:
    def test_build_and_query(self, tmp_path, graph_file, tree_query_file, capsys):
        index_path = tmp_path / "built.idx.json"
        code = main(
            [
                "index",
                "--graph", str(graph_file),
                "--backend", "pll",
                "--out", str(index_path),
            ]
        )
        assert code == 0
        assert "saved to" in capsys.readouterr().err
        code = main(
            ["match", "--load-index", str(index_path), "--query", str(tree_query_file)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]


class TestGenerate:
    @pytest.mark.parametrize("family", ["citation", "powerlaw", "uniform"])
    def test_generates_loadable_graph(self, tmp_path, capsys, family):
        out = tmp_path / "gen.tsv"
        code = main(
            [
                "generate",
                "--family", family,
                "--nodes", "60",
                "--labels", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        from repro.io import load_graph_tsv

        graph = load_graph_tsv(out)
        assert graph.num_nodes == 60
