"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.digraph import graph_from_edges
from repro.graph.query import QueryGraph, QueryTree
from repro.io import save_graph_tsv, save_query


@pytest.fixture
def graph_file(tmp_path):
    graph = graph_from_edges(
        {"a0": "a", "b0": "b", "b1": "b", "c0": "c"},
        [("a0", "b0"), ("a0", "b1", 2), ("b0", "c0"), ("b1", "c0")],
    )
    path = tmp_path / "graph.tsv"
    save_graph_tsv(graph, path)
    return path


@pytest.fixture
def tree_query_file(tmp_path):
    query = QueryTree({"r": "a", "m": "b", "l": "c"}, [("r", "m"), ("m", "l")])
    path = tmp_path / "query.json"
    save_query(query, path)
    return path


@pytest.fixture
def graph_query_file(tmp_path):
    query = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
    path = tmp_path / "qg.json"
    save_query(query, path)
    return path


class TestMatch:
    def test_outputs_matches(self, graph_file, tree_query_file, capsys):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "-k", "5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "matches"
        scores = [m["score"] for m in payload["matches"]]
        assert scores == [2.0, 3.0]

    @pytest.mark.parametrize("alg", ["dp-b", "dp-p", "topk", "topk-en"])
    def test_all_algorithms(self, graph_file, tree_query_file, capsys, alg):
        code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--query", str(tree_query_file),
                "--algorithm", alg,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["score"] for m in payload["matches"]] == [2.0, 3.0]

    def test_rejects_graph_query(self, graph_file, graph_query_file, capsys):
        code = main(
            ["match", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 2


class TestGpm:
    def test_cycle_query(self, graph_file, graph_query_file, capsys):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(graph_query_file)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches"], "expected at least one pattern match"

    def test_rejects_tree_query(self, graph_file, tree_query_file):
        code = main(
            ["gpm", "--graph", str(graph_file), "--query", str(tree_query_file)]
        )
        assert code == 2


class TestStats:
    def test_reports_closure(self, graph_file, capsys):
        code = main(["stats", "--graph", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "closure pairs" in out
        assert "theta" in out


class TestGenerate:
    @pytest.mark.parametrize("family", ["citation", "powerlaw", "uniform"])
    def test_generates_loadable_graph(self, tmp_path, capsys, family):
        out = tmp_path / "gen.tsv"
        code = main(
            [
                "generate",
                "--family", family,
                "--nodes", "60",
                "--labels", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        from repro.io import load_graph_tsv

        graph = load_graph_tsv(out)
        assert graph.num_nodes == 60
