"""Differential fuzzing: all backends, all algorithms, one answer.

Property-based cross-checks over randomly generated graphs and queries
(shared strategies in :mod:`tests.strategies`):

* every closure backend (full / ondemand / hybrid / pll) and every tree
  algorithm (dp-b / dp-p / topk / topk-en) must return the identical
  top-k result set;
* wildcard and direct-edge (``/``) queries agree across backends;
* :class:`repro.service.MatchService` (caches and all) returns exactly
  what a direct :class:`repro.engine.MatchEngine` returns, on both the
  cold and the warm cache path;
* the compiled kernel tier (:mod:`repro.kernel`) replays the reference
  enumeration byte-for-byte — scalar and numpy binds, plain / wildcard /
  containment / weighted queries, every backend — and a kernel-enabled
  engine answers exactly like one with ``REPRO_KERNEL=0``.

Tie handling: algorithms may legitimately differ in *which* boundary-
score matches fill the k-th slots, so comparisons pin the exact score
sequence plus the exact assignment set below the boundary score.

The example budget per test is ``tests.strategies.FUZZ_EXAMPLES`` (60
by default => 300 generated cases across the suite; the nightly CI job
raises it via ``REPRO_FUZZ_EXAMPLES``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools import lockcheck
from repro.engine import MatchEngine
from repro.query import to_dsl
from repro.service import MatchService
from tests.strategies import FUZZ_EXAMPLES, graph_and_query


@pytest.fixture(autouse=True, scope="module")
def _lockcheck():
    """Run the whole fuzz suite with the lock-order sanitizer armed.

    Module-scoped (not monkeypatch) so Hypothesis's function-scoped
    fixture health check stays quiet across @given examples.
    """
    previous = os.environ.get("REPRO_LOCKCHECK")
    os.environ["REPRO_LOCKCHECK"] = "1"
    lockcheck.reset()
    yield
    if previous is None:
        os.environ.pop("REPRO_LOCKCHECK", None)
    else:
        os.environ["REPRO_LOCKCHECK"] = previous
    lockcheck.reset()

BACKENDS = ("full", "ondemand", "hybrid", "pll")
TREE_ALGORITHMS = ("dp-b", "dp-p", "topk", "topk-en")

fuzz_settings = settings(max_examples=FUZZ_EXAMPLES, deadline=None)


def comparable(matches, k):
    """Canonical comparison form: exact scores + certain assignment set.

    When exactly ``k`` matches came back, the k-th score may be tied and
    the choice among tied assignments is algorithm-specific — those stay
    out of the assignment-set comparison; everything strictly below the
    boundary (and everything at all when the enumeration was exhausted)
    must agree exactly.
    """
    scores = tuple(m.score for m in matches)
    boundary = matches[-1].score if len(matches) == k and matches else None
    certain = frozenset(
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
        if boundary is None or m.score < boundary
    )
    return scores, certain


def exact(matches):
    """Order-sensitive form for runs that must be bit-identical."""
    return [
        (m.score, tuple(sorted(m.assignment.items(), key=repr)))
        for m in matches
    ]


@given(instance=graph_and_query(max_query_size=4), k=st.integers(1, 12))
@fuzz_settings
def test_backends_and_algorithms_agree(instance, k):
    """All 4 backends x all 4 tree algorithms return the same top-k set."""
    graph, query = instance
    reference = None
    for backend in BACKENDS:
        engine = MatchEngine(graph, backend=backend)
        for algorithm in TREE_ALGORITHMS:
            got = comparable(engine.top_k(query, k, algorithm=algorithm), k)
            if reference is None:
                reference = got
            else:
                assert got == reference, (backend, algorithm)


@given(
    instance=graph_and_query(max_query_size=4, wildcards=True),
    k=st.integers(1, 8),
)
@fuzz_settings
def test_wildcard_queries_agree(instance, k):
    """Wildcard nodes (non-root ``*``) agree across backends/algorithms."""
    graph, query = instance
    reference = None
    for backend in BACKENDS:
        engine = MatchEngine(graph, backend=backend)
        for algorithm in ("topk", "topk-en"):
            got = comparable(engine.top_k(query, k, algorithm=algorithm), k)
            if reference is None:
                reference = got
            else:
                assert got == reference, (backend, algorithm)


@given(
    instance=graph_and_query(max_query_size=4, weighted=True, max_weight=4),
    k=st.integers(1, 10),
)
@fuzz_settings
def test_weighted_graphs_agree(instance, k):
    """General positive weights: same agreement across the whole matrix."""
    graph, query = instance
    reference = None
    for backend in BACKENDS:
        engine = MatchEngine(graph, backend=backend)
        for algorithm in TREE_ALGORITHMS:
            got = comparable(engine.top_k(query, k, algorithm=algorithm), k)
            if reference is None:
                reference = got
            else:
                assert got == reference, (backend, algorithm)


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 8),
    data=st.data(),
)
@fuzz_settings
def test_update_path_never_serves_stale_results(instance, k, data):
    """After a random edge update, the (cache-warm) service must answer
    exactly like a fresh engine built on the updated graph — the
    selective-invalidation correctness property."""
    graph, raw_query = instance
    query = to_dsl(raw_query)  # DSL text => the cache path is exercised
    with MatchService(graph, backend="full", max_workers=1) as service:
        service.top_k(query, k)  # prime plan + result caches
        nodes = sorted(graph.nodes())
        existing = sorted((t, h) for t, h, _ in graph.edges())
        addable = [
            (t, h)
            for t in nodes
            for h in nodes
            if t != h and not graph.has_edge(t, h)
        ]
        operations = (["remove"] if existing else []) + (
            ["add"] if addable else []
        )
        if not operations:
            return
        if data.draw(st.sampled_from(operations)) == "remove":
            service.apply_updates(
                edges_removed=[data.draw(st.sampled_from(existing))]
            )
        else:
            tail, head = data.draw(st.sampled_from(addable))
            weight = data.draw(st.integers(1, 4))
            service.apply_updates(edges_added=[(tail, head, weight)])
        fresh = MatchEngine(service.snapshot().graph, backend="full")
        assert exact(service.top_k(query, k)) == exact(fresh.top_k(query, k))


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 8),
    data=st.data(),
)
@fuzz_settings
def test_delta_overlay_interleaving_matches_eager_rebuild(instance, k, data):
    """Interleaved update/query/compact schedules on the *delta* path:
    every read must be byte-identical to a fresh engine rebuilt on a
    shadow graph tracking the same mutations — before and after any
    compaction, however the overlay batches stack up."""
    graph, raw_query = instance
    query = to_dsl(raw_query)
    labels = sorted(graph.labels(), key=repr)
    shadow = graph.copy()
    next_node = [0]

    def mutate(service):
        nodes = sorted(shadow.nodes(), key=repr)
        existing = sorted(
            ((t, h) for t, h, _ in shadow.edges()), key=repr
        )
        addable = [
            (t, h)
            for t in nodes
            for h in nodes
            if t != h and not shadow.has_edge(t, h)
        ]
        operations = ["node_add", "relabel"]
        if existing:
            operations.append("remove")
        if addable:
            operations.append("add")
        operation = data.draw(st.sampled_from(sorted(operations)))
        if operation == "add":
            tail, head = data.draw(st.sampled_from(addable))
            weight = data.draw(st.integers(1, 4))
            shadow.add_edge(tail, head, weight)
            service.apply_updates(edges_added=[(tail, head, weight)])
        elif operation == "remove":
            tail, head = data.draw(st.sampled_from(existing))
            shadow.remove_edge(tail, head)
            service.apply_updates(edges_removed=[(tail, head)])
        elif operation == "node_add":
            node = f"nw{next_node[0]}"
            next_node[0] += 1
            label = data.draw(st.sampled_from(labels))
            shadow.add_node(node, label)
            service.apply_updates(nodes_added={node: label})
        else:
            node = data.draw(st.sampled_from(nodes))
            label = data.draw(st.sampled_from(labels))
            shadow.relabel_node(node, label)
            service.apply_updates(labels_changed={node: label})

    with MatchService(
        graph, backend="full", update_policy="delta", max_workers=1,
        auto_compact=False,
    ) as service:
        steps = data.draw(
            st.lists(
                st.sampled_from(("update", "query", "compact")),
                min_size=2,
                max_size=6,
            )
        )
        for step in steps:
            if step == "update":
                mutate(service)
            elif step == "compact":
                service.compact()
            else:
                fresh = MatchEngine(shadow, backend="full")
                assert exact(service.top_k(query, k)) == exact(
                    fresh.top_k(query, k)
                ), steps
        fresh = MatchEngine(shadow, backend="full")
        assert exact(service.top_k(query, k)) == exact(fresh.top_k(query, k))


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 10),
    backend=st.sampled_from(BACKENDS),
)
@fuzz_settings
def test_service_agrees_with_engine(instance, k, backend):
    """MatchService == direct MatchEngine, cold cache and warm cache.

    The service answer must be *bit-identical* (same plan, same
    snapshot), and the warm-cache answer must equal the cold one.
    """
    graph, raw_query = instance
    query = to_dsl(raw_query)  # DSL text => the cache path is exercised
    engine = MatchEngine(graph, backend=backend)
    direct = exact(engine.top_k(query, k))
    with MatchService(graph, backend=backend, max_workers=1) as service:
        cold = service.request(query, k)
        warm = service.request(query, k)
        assert exact(cold.matches) == direct
        assert exact(warm.matches) == direct
        assert warm.result_cache_hit


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 10),
    num_shards=st.sampled_from((2, 3)),
)
@fuzz_settings
def test_sharded_engine_agrees_with_flat(instance, k, num_shards):
    """ShardedEngine at 2 and 3 shards == the unsharded engine.

    Same contract the unsharded backends hold among themselves: exact
    score sequence, exact assignment set below the k-th-score boundary.
    """
    from repro.shard import ShardedEngine

    graph, query = instance
    flat = MatchEngine(graph, backend="full")
    sharded = ShardedEngine.from_graph(graph, num_shards)
    assert comparable(sharded.top_k(query, k), k) == comparable(
        flat.top_k(query, k), k
    ), num_shards


@given(
    instance=graph_and_query(max_query_size=4, weighted=True, max_weight=4),
    k=st.integers(1, 8),
    num_shards=st.sampled_from((2, 3)),
)
@fuzz_settings
def test_sharded_engine_agrees_on_weighted_graphs(instance, k, num_shards):
    """Weighted graphs: sharded == flat at 2 and 3 shards."""
    from repro.shard import ShardedEngine

    graph, query = instance
    flat = MatchEngine(graph, backend="full")
    sharded = ShardedEngine.from_graph(graph, num_shards)
    assert comparable(sharded.top_k(query, k), k) == comparable(
        flat.top_k(query, k), k
    ), num_shards


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 8),
    num_shards=st.sampled_from((2, 3)),
    data=st.data(),
)
@fuzz_settings
def test_sharded_engine_update_path_agrees(instance, k, num_shards, data):
    """After a random delta, ShardedEngine.updated() == a fresh flat
    engine on the mutated graph (the epoch-swap correctness property)."""
    from repro.shard import ShardedEngine

    graph, query = instance
    sharded = ShardedEngine.from_graph(graph, num_shards)
    nodes = sorted(graph.nodes())
    existing = sorted((t, h) for t, h, _ in graph.edges())
    addable = [
        (t, h)
        for t in nodes
        for h in nodes
        if t != h and not graph.has_edge(t, h)
    ]
    operations = (["remove"] if existing else []) + (["add"] if addable else [])
    if not operations:
        return
    if data.draw(st.sampled_from(operations)) == "remove":
        deltas = {"edges_removed": [data.draw(st.sampled_from(existing))]}
    else:
        tail, head = data.draw(st.sampled_from(addable))
        deltas = {"edges_added": [(tail, head, data.draw(st.integers(1, 4)))]}
    swapped = sharded.updated(**deltas)
    assert swapped.epoch == sharded.epoch + 1
    fresh = MatchEngine(swapped.graph, backend="full")
    assert comparable(swapped.top_k(query, k), k) == comparable(
        fresh.top_k(query, k), k
    ), (num_shards, deltas)


#: Replicated-service schedules spawn four worker processes per
#: example, so this test runs a slice of the usual budget.
replicated_settings = settings(
    max_examples=max(4, FUZZ_EXAMPLES // 10), deadline=None
)


@given(
    instance=graph_and_query(max_query_size=4),
    k=st.integers(1, 8),
    data=st.data(),
)
@replicated_settings
def test_replicated_sharded_service_interleaving_matches_flat(
    instance, k, data
):
    """Interleaved update/query/compact schedules through an R=2
    ShardedMatchService: every read must satisfy the scatter-gather
    contract against a fresh flat engine on a shadow graph tracking the
    same mutations — replicas and broadcasts included."""
    from repro.service import ShardedMatchService

    graph, raw_query = instance
    query = to_dsl(raw_query)
    labels = sorted(graph.labels(), key=repr)
    shadow = graph.copy()
    next_node = [0]

    def mutate(service):
        nodes = sorted(shadow.nodes(), key=repr)
        existing = sorted(((t, h) for t, h, _ in shadow.edges()), key=repr)
        addable = [
            (t, h)
            for t in nodes
            for h in nodes
            if t != h and not shadow.has_edge(t, h)
        ]
        operations = ["node_add", "relabel"]
        if existing:
            operations.append("remove")
        if addable:
            operations.append("add")
        operation = data.draw(st.sampled_from(sorted(operations)))
        if operation == "add":
            tail, head = data.draw(st.sampled_from(addable))
            weight = data.draw(st.integers(1, 4))
            shadow.add_edge(tail, head, weight)
            service.apply_updates(edges_added=[(tail, head, weight)])
        elif operation == "remove":
            tail, head = data.draw(st.sampled_from(existing))
            shadow.remove_edge(tail, head)
            service.apply_updates(edges_removed=[(tail, head)])
        elif operation == "node_add":
            node = f"nw{next_node[0]}"
            next_node[0] += 1
            label = data.draw(st.sampled_from(labels))
            shadow.add_node(node, label)
            service.apply_updates(nodes_added={node: label})
        else:
            node = data.draw(st.sampled_from(nodes))
            label = data.draw(st.sampled_from(labels))
            shadow.relabel_node(node, label)
            service.apply_updates(labels_changed={node: label})

    with ShardedMatchService(
        graph, num_shards=2, replication=2, max_workers=2
    ) as service:
        steps = data.draw(
            st.lists(
                st.sampled_from(("update", "query", "compact")),
                min_size=2,
                max_size=4,
            )
        )
        for step in steps:
            if step == "update":
                mutate(service)
            elif step == "compact":
                service.compact()
            else:
                fresh = MatchEngine(shadow, backend="full")
                assert comparable(service.top_k(query, k), k) == comparable(
                    fresh.top_k(query, k), k
                ), steps
        fresh = MatchEngine(shadow, backend="full")
        assert comparable(service.top_k(query, k), k) == comparable(
            fresh.top_k(query, k), k
        )


# ----------------------------------------------------------------------
# Compiled kernel tier
# ----------------------------------------------------------------------


def _kernel_bind_modes():
    """Scalar always; the numpy bind only where numpy is importable."""
    from repro.compact import accel

    return (False, True) if accel.resolve_numpy(True) is not None else (False,)


@given(
    instance=graph_and_query(max_query_size=4, wildcards=True),
    k=st.integers(1, 10),
)
@fuzz_settings
def test_compiled_kernel_is_bit_identical_to_interpreter(instance, k):
    """Kernel run == the reference ("topk") interpreter *byte-for-byte*.

    The kernel replays the reference enumeration over flat arrays, so
    scores, assignments, and order must all be identical — on every
    backend, for the scalar and the numpy bind alike (plain and
    wildcard queries; ``/`` axes included by the strategy).
    """
    from repro.kernel import bind_program, compile_program

    graph, query = instance
    for backend in BACKENDS:
        engine = MatchEngine(graph, backend=backend)
        compiled = engine.compile(query)
        reference = exact(
            engine._build_enumerator(compiled, "topk").top_k(k)
        )
        program = compile_program(compiled)
        matcher = compiled.effective_matcher(engine.config.label_matcher)
        for use_numpy in _kernel_bind_modes():
            bound = bind_program(
                program, engine.store, matcher=matcher, use_numpy=use_numpy
            )
            assert exact(bound.run().top_k(k)) == reference, (
                backend, use_numpy,
            )


@given(
    instance=graph_and_query(max_query_size=4, weighted=True, max_weight=4),
    k=st.integers(1, 8),
    data=st.data(),
)
@fuzz_settings
def test_compiled_kernel_containment_weighted_bit_identical(instance, k, data):
    """Containment queries (``~A//~B`` family) on weighted graphs:
    kernel == reference interpreter byte-for-byte, both bind modes."""
    from repro.kernel import bind_program, compile_program

    graph, _ = instance
    labels = sorted(graph.labels(), key=repr)
    first, second = data.draw(st.permutations(labels))[:2]
    query = f"~{first}//~{second}"
    for backend in ("full", data.draw(st.sampled_from(BACKENDS))):
        engine = MatchEngine(graph, backend=backend)
        compiled = engine.compile(query)
        reference = exact(
            engine._build_enumerator(compiled, "topk").top_k(k)
        )
        program = compile_program(compiled)
        matcher = compiled.effective_matcher(engine.config.label_matcher)
        for use_numpy in _kernel_bind_modes():
            bound = bind_program(
                program, engine.store, matcher=matcher, use_numpy=use_numpy
            )
            assert exact(bound.run().top_k(k)) == reference, (
                backend, use_numpy,
            )


@given(
    instance=graph_and_query(max_query_size=4, wildcards=True),
    k=st.integers(1, 10),
    backend=st.sampled_from(BACKENDS),
)
@fuzz_settings
def test_kernel_enabled_engine_agrees_with_kill_switched(instance, k, backend):
    """End-to-end ``top_k`` with the kernel on == ``REPRO_KERNEL=0``.

    Auto-selected plans: same top-k contract as the algorithm matrix
    (exact scores + certain assignment set); when the planner picked the
    ``topk`` reference algorithm the answers must match exactly.
    """
    import os

    graph, query = instance
    engine_on = MatchEngine(graph, backend=backend)
    plan = engine_on.explain(query, k)
    on = engine_on.top_k(query, k)
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "0"
    try:
        off = MatchEngine(graph, backend=backend).top_k(query, k)
    finally:
        if previous is None:
            del os.environ["REPRO_KERNEL"]
        else:
            os.environ["REPRO_KERNEL"] = previous
    assert comparable(on, k) == comparable(off, k), plan.algorithm
    if plan.algorithm == "topk":
        assert exact(on) == exact(off)
