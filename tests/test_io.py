"""Tests for serialization (TSV graphs, JSON queries/matches)."""

import io

import pytest

from repro.core.matches import Match
from repro.exceptions import GraphError, QueryError
from repro.graph.digraph import graph_from_edges
from repro.graph.query import EdgeType, QueryGraph, QueryTree
from repro.io import (
    load_graph_tsv,
    load_query,
    matches_from_json,
    matches_to_json,
    query_graph_from_dict,
    query_graph_to_dict,
    query_tree_from_dict,
    query_tree_to_dict,
    save_graph_tsv,
    save_query,
)


class TestGraphTsv:
    def test_round_trip(self, tmp_path):
        graph = graph_from_edges(
            {"a": "x", "b": "y"}, [("a", "b", 2.5)]
        )
        path = tmp_path / "g.tsv"
        save_graph_tsv(graph, path)
        loaded = load_graph_tsv(path)
        assert loaded.num_nodes == 2
        assert loaded.edge_weight("a", "b") == 2.5
        assert loaded.label("a") == "x"

    def test_unit_weights_omitted(self):
        graph = graph_from_edges({"a": "x", "b": "y"}, [("a", "b")])
        buffer = io.StringIO()
        save_graph_tsv(graph, buffer)
        assert "edge\ta\tb\n" in buffer.getvalue()

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nnode\tn1\tA\nnode\tn2\tB\nedge\tn1\tn2\t3\n"
        graph = load_graph_tsv(io.StringIO(text))
        assert graph.edge_weight("n1", "n2") == 3

    def test_edges_may_precede_nodes(self):
        text = "edge\tn1\tn2\nnode\tn1\tA\nnode\tn2\tB\n"
        graph = load_graph_tsv(io.StringIO(text))
        assert graph.has_edge("n1", "n2")

    def test_malformed_node_line(self):
        with pytest.raises(GraphError, match="line 1"):
            load_graph_tsv(io.StringIO("node\tonlyid\n"))

    def test_unknown_declaration(self):
        with pytest.raises(GraphError, match="unknown declaration"):
            load_graph_tsv(io.StringIO("vertex\ta\tb\n"))


class TestQueryJson:
    def test_tree_round_trip(self, tmp_path):
        query = QueryTree(
            {"r": "a", "c": "b"}, [("r", "c", EdgeType.CHILD)]
        )
        path = tmp_path / "q.json"
        save_query(query, path)
        loaded = load_query(path)
        assert isinstance(loaded, QueryTree)
        assert loaded.label("r") == "a"
        assert loaded.edge_type("r", "c") is EdgeType.CHILD

    def test_tree_dict_round_trip(self):
        query = QueryTree({"r": "a", "c": "b", "d": "c"}, [("r", "c"), ("r", "d")])
        clone = query_tree_from_dict(query_tree_to_dict(query))
        assert {u: clone.label(u) for u in clone.nodes()} == {
            str(u): query.label(u) for u in query.nodes()
        }

    def test_graph_round_trip(self, tmp_path):
        query = QueryGraph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "qg.json"
        save_query(query, path)
        loaded = load_query(path)
        assert isinstance(loaded, QueryGraph)
        assert loaded.num_edges == 3

    def test_graph_dict_round_trip(self):
        query = QueryGraph({0: "a", 1: "b"}, [(0, 1)])
        clone = query_graph_from_dict(query_graph_to_dict(query))
        assert clone.num_nodes == 2

    def test_wrong_kind_rejected(self):
        with pytest.raises(QueryError):
            query_tree_from_dict({"kind": "query-graph", "nodes": {}, "edges": []})
        with pytest.raises(QueryError):
            query_graph_from_dict({"kind": "query-tree", "nodes": {}, "edges": []})

    def test_unknown_kind(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            load_query(io.StringIO('{"kind": "mystery"}'))


class TestMatchesJson:
    def test_round_trip(self):
        matches = [
            Match({"u": "v1"}, 2.0),
            Match({"u": "v2"}, 3.5),
        ]
        text = matches_to_json(matches)
        loaded = matches_from_json(text)
        assert [m.score for m in loaded] == [2.0, 3.5]
        assert loaded[0].assignment == {"u": "v1"}

    def test_wrong_document(self):
        with pytest.raises(QueryError):
            matches_from_json('{"kind": "nope"}')
