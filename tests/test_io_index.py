"""Round-trips for the index-artifact converters in repro.io."""

import pytest

from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.transitive import TransitiveClosure
from repro.exceptions import GraphError
from repro.io import (
    closure_from_dict,
    closure_to_dict,
    graph_from_dict,
    graph_to_dict,
    pll_from_dict,
    pll_to_dict,
)


class TestGraphDict:
    def test_round_trip(self, figure4_graph):
        data = graph_to_dict(figure4_graph)
        back = graph_from_dict(data)
        assert back.num_nodes == figure4_graph.num_nodes
        assert back.num_edges == figure4_graph.num_edges
        for tail, head, weight in figure4_graph.edges():
            assert back.edge_weight(str(tail), str(head)) == weight
            assert back.label(str(tail)) == str(figure4_graph.label(tail))

    def test_kind_checked(self):
        with pytest.raises(GraphError, match="labeled-digraph"):
            graph_from_dict({"kind": "something-else"})


class TestClosureDict:
    def test_round_trip_skips_recompute(self, figure4_graph):
        closure = TransitiveClosure(figure4_graph)
        back = closure_from_dict(figure4_graph, closure_to_dict(closure))
        assert back.num_pairs == closure.num_pairs
        assert back.build_seconds == 0.0
        for tail, head, dist in closure.pairs():
            assert back.distance(tail, head) == dist

    def test_partial_flag_round_trips(self, figure4_graph):
        closure = TransitiveClosure(figure4_graph, sources=["v1"])
        back = closure_from_dict(figure4_graph, closure_to_dict(closure))
        assert back.is_partial
        assert back.num_pairs == closure.num_pairs

    def test_kind_checked(self, figure4_graph):
        with pytest.raises(GraphError, match="transitive-closure"):
            closure_from_dict(figure4_graph, {"kind": "nope"})


class TestPLLDict:
    def test_round_trip_distances(self, figure4_graph):
        index = PrunedLandmarkIndex(figure4_graph)
        back = pll_from_dict(figure4_graph, pll_to_dict(index))
        for u in figure4_graph.nodes():
            for v in figure4_graph.nodes():
                assert back.distance(u, v) == index.distance(u, v)
        assert back.index_size() == index.index_size()

    def test_kind_checked(self, figure4_graph):
        with pytest.raises(GraphError, match="pll-index"):
            pll_from_dict(figure4_graph, {"kind": "nope"})
