"""Property-based round-trip tests for serialization."""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryTree
from repro.io import (
    load_graph_tsv,
    query_tree_from_dict,
    query_tree_to_dict,
    save_graph_tsv,
)

# Printable identifiers without tabs/newlines (the TSV delimiters).
_ident = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), min_codepoint=48
    ),
    min_size=1,
    max_size=8,
)


@given(
    nodes=st.dictionaries(_ident, _ident, min_size=1, max_size=12),
    edge_seed=st.integers(0, 10**6),
    weights=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_graph_tsv_round_trip(nodes, edge_seed, weights):
    rng = random.Random(edge_seed)
    graph = LabeledDiGraph()
    for node, label in nodes.items():
        graph.add_node(node, label)
    ids = sorted(nodes)
    for _ in range(min(20, len(ids) * 2)):
        tail, head = rng.choice(ids), rng.choice(ids)
        if tail == head:
            continue
        weight = rng.choice([1, 2, 0.5]) if weights else 1
        graph.add_edge(tail, head, weight)

    buffer = io.StringIO()
    save_graph_tsv(graph, buffer)
    buffer.seek(0)
    loaded = load_graph_tsv(buffer)

    assert loaded.num_nodes == graph.num_nodes
    assert loaded.num_edges == graph.num_edges
    for node in graph.nodes():
        assert loaded.label(node) == graph.label(node)
    for tail, head, weight in graph.edges():
        assert loaded.edge_weight(tail, head) == weight


@given(
    size=st.integers(1, 10),
    shape_seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_query_tree_dict_round_trip(size, shape_seed):
    rng = random.Random(shape_seed)
    labels = {i: f"label{rng.randrange(size + 2)}" for i in range(size)}
    edges = [(rng.randrange(i), i) for i in range(1, size)]
    query = QueryTree(labels, edges)

    clone = query_tree_from_dict(query_tree_to_dict(query))

    assert clone.num_nodes == query.num_nodes
    # Node ids stringify in the JSON form; compare structure via labels
    # along the BFS order, which is deterministic for both.
    assert [clone.label(u) for u in clone.bfs_order()] == [
        query.label(u) for u in query.bfs_order()
    ]
    assert [clone.depth(u) for u in clone.bfs_order()] == [
        query.depth(u) for u in query.bfs_order()
    ]
