"""Integration tests that replay the paper's worked narratives end-to-end.

Each test class walks one of the paper's examples through the public API,
asserting the quantities the paper states (scores, orderings, loaded
edges, subspace counts).  These are the highest-level fidelity checks in
the suite.
"""

from repro import TreeMatcher
from repro.closure.store import ClosureStore
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.runtime.graph import build_runtime_graph


class TestFigure1Narrative:
    """Introduction: top-k tree matching over a patent citation graph."""

    def test_story(self, figure1_graph, figure1_query):
        matcher = TreeMatcher(figure1_graph)
        matches = matcher.top_k(figure1_query, 10)

        # "Figures 1(c) and 1(d) give the top-1 and top-2 matches ... with
        # total scores 2 and 2, respectively" — two score-2 matches exist.
        assert [m.score for m in matches[:2]] == [2, 2]

        # "...while the largest score is 3" over all matches.
        assert matches[-1].score == 3

        # The top matches are direct-citation triples: every query edge is
        # realized by a distance-1 citation.
        for match in matches[:2]:
            root = match.assignment["uC"]
            for child in ("uE", "uS"):
                assert figure1_graph.has_edge(root, match.assignment[child])


class TestExample21Scoring:
    """Definition 2.2 / Example 2.1: the penalty score is the sum of
    shortest distances over query edges."""

    def test_score_accumulates_shortest_paths(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph)
        from repro.runtime.graph import assignment_score

        # v1 -> v3 at distance 1, v3 -> v7 at distance 3, v1 -> v2 at 1.
        score = assignment_score(
            store, figure4_query,
            {"u1": "v1", "u2": "v2", "u3": "v3", "u4": "v7"},
        )
        assert score == 1 + 1 + 3


class TestLawlerSubspaceAccounting:
    """Section 3.2: dividing the top-l match's subspace creates at most
    one Case-1 subspace plus (n_T - j) Case-2 subspaces."""

    def test_candidates_per_round_bounded(self, figure1_graph, figure1_query):
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        engine = TopkEnumerator(gr)
        engine.top_k(6)
        n_t = figure1_query.num_nodes
        # Per round: one Case-1 request and at most n_T - 1 Case-2 requests.
        assert engine.stats.case1_requests == engine.stats.rounds
        assert engine.stats.case2_requests <= engine.stats.rounds * (n_t - 1)
        assert engine.stats.candidates_generated <= engine.stats.rounds * n_t

    def test_enumeration_is_duplicate_free_and_complete(
        self, figure1_graph, figure1_query
    ):
        store = ClosureStore.build(figure1_graph)
        gr = build_runtime_graph(store, figure1_query)
        matches = TopkEnumerator(gr).top_k(10_000)
        keys = {tuple(sorted(m.assignment.items())) for m in matches}
        assert len(keys) == len(matches) == 6


class TestExample33DataStructure:
    """Example 3.3: bottom-up construction of the L/H lists."""

    def test_h_lists(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph)
        gr = build_runtime_graph(store, figure4_query)
        engine = TopkEnumerator(gr)
        # H_{v_i, d} for the level-2 nodes: (v7, delta).
        for v, dist in (("v3", 3), ("v4", 4), ("v5", 1), ("v6", 2)):
            slot = engine._slots[("u3", v, "u4")]
            assert slot.min() == (dist, ("u4", "v7"))
        # H_{v1,b} = {(v2, 1)}.
        assert engine._slots[("u1", "v1", "u2")].min() == (1, ("u2", "v2"))
        # bs(v1) = 1 + 2 = 3 (Example 3.3's final sentence).
        assert engine.top1_score() == 3


class TestExample34Enumeration:
    """Example 3.4: the exact replacement sequence at the c-position."""

    def test_replacement_sequence(self, figure4_graph, figure4_query):
        matcher = TreeMatcher(figure4_graph)
        matches = matcher.top_k(figure4_query, 10, algorithm="topk")
        assert [(m.score, m.assignment["u3"]) for m in matches] == [
            (3, "v5"),
            (4, "v6"),
            (5, "v3"),
            (6, "v4"),
        ]


class TestExample42PriorityAccess:
    """Example 4.2 / Figure 5: ComputeFirst expands only v5."""

    def test_loaded_part_matches_figure5(self, figure4_graph, figure4_query):
        store = ClosureStore.build(figure4_graph, block_size=2)
        engine = TopkEN(store, figure4_query)
        score = engine.compute_first()
        assert score == 3
        # Figure 5's loaded subgraph: the E/D initialization plus the
        # single incoming edge (v1, v5) pulled by expanding v5.
        assert engine.stats.expansions == 1
        assert engine.stats.edges_loaded == 1
        # v1 became active and popped as the root; v3, v4, v6 never
        # expanded their incoming groups.
        for v in ("v3", "v4", "v6"):
            state = engine._states.get(("u3", v))
            assert state is not None and state.cursor is None


class TestSection6Protocol:
    """Eval protocol smoke test: all four algorithms on a generated
    dataset/query-set pair, agreeing pairwise."""

    def test_protocol(self):
        from repro.workloads import build_dataset, random_query_tree

        graph = build_dataset("GS1", scale=1 / 100)
        matcher = TreeMatcher(graph)
        query = random_query_tree(matcher.closure, 5, seed=1)
        reference = None
        for algorithm in ("dp-b", "dp-p", "topk", "topk-en"):
            scores = [
                m.score for m in matcher.top_k(query, 20, algorithm=algorithm)
            ]
            if reference is None:
                reference = scores
            else:
                assert scores == reference, algorithm
        assert reference, "query sets must be realizable by construction"
