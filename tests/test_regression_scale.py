"""Medium-scale regression: the whole pipeline on a generated workload.

One deliberately non-tiny instance (a ~800-node citation graph) pushed
through every public entry point: all four core algorithms, the general
twig engine, diversity, the hybrid/on-demand stores, and kGPM.  This
catches integration regressions that unit-scale graphs cannot (deep
slots, multi-block groups, non-trivial pending traffic).
"""

import pytest

from repro.closure.hybrid import HybridStore
from repro.closure.ondemand import OnDemandStore
from repro.core import TreeMatcher, diverse_top_k
from repro.core.topk_en import TopkEN
from repro.graph.generators import citation_graph
from repro.gpm import KGPMEngine
from repro.graph.query import QueryGraph
from repro.twig.general import TopkGT
from repro.workloads import random_query_tree


@pytest.fixture(scope="module")
def workload():
    graph = citation_graph(800, num_labels=40, seed=17)
    matcher = TreeMatcher(graph, block_size=16)
    query = random_query_tree(matcher.closure, 12, seed=5)
    return graph, matcher, query


class TestCorePipeline:
    def test_algorithms_agree_at_scale(self, workload):
        _, matcher, query = workload
        reference = None
        for algorithm in ("dp-b", "dp-p", "topk", "topk-en"):
            scores = [
                m.score for m in matcher.top_k(query, 50, algorithm=algorithm)
            ]
            assert len(scores) == 50, algorithm
            assert scores == sorted(scores), algorithm
            if reference is None:
                reference = scores
            else:
                assert scores == reference, algorithm

    def test_lazy_engine_saves_top1_loads(self, workload):
        _, matcher, query = workload
        engine = matcher.engine(query, "topk-en")
        engine.compute_first()
        from repro.runtime.graph import build_runtime_graph

        gr = build_runtime_graph(matcher.store, query)
        assert engine.stats.edges_loaded < gr.raw_num_edges

    def test_diversity_at_scale(self, workload):
        _, matcher, query = workload
        engine = matcher.engine(query, "topk")
        diverse = diverse_top_k(engine, 5, min_distance=3)
        for i, a in enumerate(diverse):
            for b in diverse[i + 1 :]:
                differing = sum(
                    1
                    for u in a.assignment
                    if a.assignment[u] != b.assignment[u]
                )
                assert differing >= 3

    def test_general_twig_at_scale(self, workload):
        graph, matcher, _ = workload
        query = random_query_tree(
            matcher.closure, 10, distinct_labels=False, seed=9
        )
        matches = TopkGT(matcher.store, query).top_k(10)
        assert matches
        scores = [m.score for m in matches]
        assert scores == sorted(scores)


class TestAlternativeStores:
    def test_hybrid_store_agrees(self, workload):
        graph, matcher, query = workload
        hybrid = HybridStore(
            graph, hot_fraction=0.3, block_size=16, closure=matcher.closure
        )
        want = [m.score for m in matcher.top_k(query, 20, algorithm="topk-en")]
        got = [m.score for m in TopkEN(hybrid, query).top_k(20)]
        assert got == want

    def test_ondemand_store_agrees(self, workload):
        graph, matcher, query = workload
        ondemand = OnDemandStore(graph, block_size=16)
        want = [m.score for m in matcher.top_k(query, 20, algorithm="topk-en")]
        got = [m.score for m in TopkEN(ondemand, query).top_k(20)]
        assert got == want


class TestKgpmAtScale:
    def test_mtree_variants_agree(self, workload):
        graph, matcher, _ = workload
        # A small cyclic pattern over frequent labels.
        labels = sorted(
            graph.labels(),
            key=lambda l: -len(graph.nodes_with_label(l)),
        )[:3]
        query = QueryGraph(
            {0: labels[0], 1: labels[1], 2: labels[2]},
            [(0, 1), (1, 2), (2, 0)],
        )
        plus = KGPMEngine(graph, tree_algorithm="topk-en")
        base = KGPMEngine(
            graph,
            tree_algorithm="dp-b",
            closure=plus.closure,
            store=plus.store,
        )
        a = [m.score for m in plus.top_k(query, 10)]
        b = [m.score for m in base.top_k(query, 10)]
        assert a == b
