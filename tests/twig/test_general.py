"""Tests for Topk-GT: general twig queries end-to-end."""

import random

import pytest

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.brute_force import all_matches
from repro.exceptions import QueryError
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query import WILDCARD, EdgeType, QueryTree
from repro.runtime.graph import build_runtime_graph
from repro.twig import ContainmentMatcher, TopkGT, general_topk


def make_store(graph, block_size=2):
    return ClosureStore(graph, TransitiveClosure(graph), block_size=block_size)


class TestDuplicateLabels:
    def test_same_label_twice(self, figure4_graph):
        # c -> c is unsatisfiable here (no c reaches another c)...
        q = QueryTree({0: "a", 1: "c", 2: "c"}, [(0, 1), (0, 2)])
        store = make_store(figure4_graph)
        matches = TopkGT(store, q).top_k(3)
        # Both c positions map independently (non-injective allowed); all
        # four c-nodes sit at distance 1, so the best match doubles up one
        # node at score 2.
        assert matches[0].score == 2
        assert matches[0].assignment[1] == matches[0].assignment[2]

    def test_non_injective_allowed(self):
        g = graph_from_edges(
            {"r": "a", "x": "b"}, [("r", "x")]
        )
        q = QueryTree({0: "a", 1: "b", 2: "b"}, [(0, 1), (0, 2)])
        matches = TopkGT(make_store(g), q).top_k(5)
        assert len(matches) == 1
        assert matches[0].assignment[1] == matches[0].assignment[2] == "x"


class TestWildcards:
    def test_wildcard_leaf(self, figure4_graph):
        q = QueryTree({0: "c", 1: WILDCARD}, [(0, 1)])
        store = make_store(figure4_graph)
        matches = TopkGT(store, q).top_k(10)
        # Each c-node's only descendant is v7.
        assert [m.score for m in matches] == [1, 2, 3, 4]

    def test_wildcard_internal(self, figure4_graph):
        q = QueryTree({0: "a", 1: WILDCARD, 2: "d"}, [(0, 1), (1, 2)])
        store = make_store(figure4_graph)
        matches = TopkGT(store, q).top_k(3)
        # Best: v1 -> v5 -> v7 with score 2.
        assert matches[0].score == 2
        assert matches[0].assignment[1] == "v5"

    def test_wildcard_root_rejected(self, figure4_graph):
        q = QueryTree({0: WILDCARD, 1: "d"}, [(0, 1)])
        with pytest.raises(QueryError, match="wildcard root"):
            TopkGT(make_store(figure4_graph), q)


class TestChildEdges:
    def test_child_edge_enforced(self, figure4_graph):
        store = make_store(figure4_graph)
        q = QueryTree(
            {0: "a", 1: "c", 2: "d"},
            [(0, 1, EdgeType.CHILD), (1, 2, EdgeType.CHILD)],
        )
        matches = TopkGT(store, q).top_k(10)
        assert [m.score for m in matches] == [2, 3, 4, 5]

    def test_mixed_edges(self, figure4_graph):
        store = make_store(figure4_graph)
        q = QueryTree(
            {0: "a", 1: "d"},
            [(0, 1, EdgeType.DESCENDANT)],
        )
        assert TopkGT(store, q).top_k(1)[0].score == 2


class TestContainment:
    def test_containment_end_to_end(self):
        g = graph_from_edges(
            {
                "p1": "db+ml",
                "p2": "db",
                "c1": "sys+db",
                "c2": "ml",
            },
            [("p1", "c1", 1), ("p1", "c2", 2), ("p2", "c1", 1)],
        )
        q = QueryTree({0: "db", 1: "db"}, [(0, 1)])
        store = make_store(g)
        matches = general_topk(store, q, 5, matcher=ContainmentMatcher())
        # Parents containing db: p1, p2; children containing db: c1.
        assert [m.score for m in matches] == [1, 1]
        roots = {m.assignment[0] for m in matches}
        assert roots == {"p1", "p2"}


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", range(25))
    def test_gt_matches_oracle(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 12), rng.randint(8, 30), num_labels=3, seed=seed
        )
        store = make_store(g, block_size=rng.choice([1, 4, 32]))
        labels = sorted(g.labels())
        size = rng.randint(2, 5)
        qlabels = {0: rng.choice(labels)}
        edges = []
        for i in range(1, size):
            qlabels[i] = rng.choice(
                labels + ([WILDCARD] if rng.random() < 0.3 else [])
            )
            etype = (
                EdgeType.CHILD if rng.random() < 0.3 else EdgeType.DESCENDANT
            )
            edges.append((rng.randrange(i), i, etype))
        q = QueryTree(qlabels, edges)
        gr = build_runtime_graph(store, q)
        oracle = [m.score for m in all_matches(gr, limit=400_000)]
        k = rng.choice([1, 5, 20])
        for alg in ("topk-gt", "topk", "dp-b", "brute-force"):
            got = [m.score for m in general_topk(store, q, k, algorithm=alg)]
            assert got == oracle[:k], (alg, seed)

    def test_unknown_algorithm(self, figure4_graph, figure4_query):
        store = make_store(figure4_graph)
        with pytest.raises(ValueError):
            general_topk(store, figure4_query, 1, algorithm="nope")
