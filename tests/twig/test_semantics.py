"""Tests for label-matching semantics."""

from repro.graph.query import WILDCARD
from repro.twig.semantics import EQUALITY, ContainmentMatcher, LabelMatcher


class TestEqualityMatcher:
    def test_exact_match(self):
        assert EQUALITY.matches("a", "a")
        assert not EQUALITY.matches("a", "b")

    def test_wildcard_matches_everything(self):
        assert EQUALITY.matches(WILDCARD, "anything")

    def test_data_labels_for(self):
        assert EQUALITY.data_labels_for("a", ["a", "b"]) == ["a"]
        assert EQUALITY.data_labels_for(WILDCARD, ["a", "b"]) is None

    def test_data_labels_for_absent_label(self):
        # Equality matching does not consult the alphabet.
        assert LabelMatcher().data_labels_for("zz", ["a"]) == ["zz"]


class TestContainmentMatcher:
    def test_string_tokens(self):
        m = ContainmentMatcher()
        assert m.matches("red", "red+blue")
        assert m.matches("red+blue", "blue+red+green")
        assert not m.matches("red+blue", "red")

    def test_frozenset_labels(self):
        m = ContainmentMatcher()
        assert m.matches(frozenset({"a"}), frozenset({"a", "b"}))
        assert not m.matches(frozenset({"a", "c"}), frozenset({"a", "b"}))

    def test_tuple_and_scalar_labels(self):
        m = ContainmentMatcher()
        assert m.matches(("a",), ("a", "b"))
        assert m.matches(5, (5, 6))
        assert not m.matches(7, (5, 6))

    def test_wildcard(self):
        m = ContainmentMatcher()
        assert m.matches(WILDCARD, "x")
        assert m.data_labels_for(WILDCARD, ["x"]) is None

    def test_data_labels_for_scans_alphabet(self):
        m = ContainmentMatcher()
        labels = ["red", "red+blue", "blue", "green+red"]
        assert m.data_labels_for("red", labels) == [
            "red",
            "red+blue",
            "green+red",
        ]

    def test_custom_delimiter(self):
        m = ContainmentMatcher(delimiter="|")
        assert m.matches("a", "a|b")
        assert not m.matches("a", "a+b")  # '+' is literal now
