"""Tests for undirected tree queries and root selection."""

import random

import pytest

from repro.closure.store import ClosureStore
from repro.core.topk_en import TopkEN
from repro.exceptions import QueryError
from repro.graph.digraph import graph_from_edges
from repro.graph.generators import erdos_renyi_graph
from repro.twig.undirected import (
    UndirectedTreeQuery,
    select_root,
    undirected_top_k,
)


def collaboration_graph():
    return graph_from_edges(
        {"p1": "a", "p2": "b", "p3": "c", "p4": "b", "p5": "c"},
        [("p1", "p2"), ("p2", "p3"), ("p1", "p4"), ("p4", "p5")],
    )


class TestUndirectedTreeQuery:
    def test_rooted_at_every_node(self):
        q = UndirectedTreeQuery({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        for root in (0, 1, 2):
            tree = q.rooted_at(root)
            assert tree.root == root
            assert tree.num_nodes == 3

    def test_cyclic_rejected(self):
        with pytest.raises(QueryError, match="acyclic"):
            UndirectedTreeQuery(
                {0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)]
            )

    def test_rootings_enumerates_all(self):
        q = UndirectedTreeQuery({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        assert {t.root for t in q.rootings()} == {0, 1, 2}


class TestRootInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_scores_identical_for_every_root(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi_graph(
            rng.randint(6, 12), rng.randint(8, 26), num_labels=4, seed=seed
        )
        labels = sorted(g.labels())
        rng.shuffle(labels)
        size = min(len(labels), 4)
        if size < 2:
            pytest.skip("degenerate labeling")
        q = UndirectedTreeQuery(
            {i: labels[i] for i in range(size)},
            [(rng.randrange(i), i) for i in range(1, size)],
        )
        store = ClosureStore.build(g.bidirected())
        reference = None
        for tree in q.rootings():
            scores = [m.score for m in TopkEN(store, tree).top_k(8)]
            if reference is None:
                reference = scores
            else:
                assert scores == reference, tree.root


class TestRootSelection:
    def test_select_root_minimizes_cost(self):
        g = collaboration_graph()
        store = ClosureStore.build(g.bidirected())
        q = UndirectedTreeQuery({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        chosen = select_root(q, store.closure)
        counts = store.closure.same_type_statistics()
        from repro.gpm.decompose import decomposition_cost

        chosen_cost = decomposition_cost((chosen, []), counts)
        for tree in q.rootings():
            assert chosen_cost <= decomposition_cost((tree, []), counts)

    def test_undirected_top_k_end_to_end(self):
        g = collaboration_graph()
        q = UndirectedTreeQuery({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        matches = undirected_top_k(g, q, 5)
        assert matches
        # Best: p1-p2-p3 or p1-p4-p5, both with two unit hops.
        assert matches[0].score == 2

    def test_explicit_root_same_scores(self):
        g = collaboration_graph()
        q = UndirectedTreeQuery({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        auto = [m.score for m in undirected_top_k(g, q, 5)]
        explicit = [m.score for m in undirected_top_k(g, q, 5, root=2)]
        assert auto == explicit
