"""Tests for heap utilities."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import LazyDeletionHeap, TieBreakHeap


class TestTieBreakHeap:
    def test_orders_by_key(self):
        h = TieBreakHeap()
        for key in [5, 1, 3]:
            h.push(key, f"p{key}")
        assert h.pop() == (1, "p1")
        assert h.peek() == (3, "p3")
        assert h.peek_key() == 3
        assert len(h) == 2

    def test_ties_pop_in_insertion_order(self):
        h = TieBreakHeap()
        h.push(1, "first")
        h.push(1, "second")
        assert h.pop()[1] == "first"
        assert h.pop()[1] == "second"

    def test_unorderable_payloads(self):
        h = TieBreakHeap()
        h.push(1, {"a": 1})
        h.push(1, {"b": 2})  # dicts are not orderable; must not raise
        assert h.pop()[0] == 1

    def test_items_iteration(self):
        h = TieBreakHeap()
        h.push(2, "x")
        h.push(1, "y")
        assert sorted(h.items()) == [(1, "y"), (2, "x")]

    @given(st.lists(st.integers(-50, 50), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_heap_sort_property(self, keys):
        h = TieBreakHeap()
        for key in keys:
            h.push(key, None)
        out = [h.pop()[0] for _ in range(len(keys))]
        assert out == sorted(keys)


class _Item:
    def __init__(self, key):
        self.key = key


class TestLazyDeletionHeap:
    def test_basic_order(self):
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        items = [_Item(k) for k in (4, 2, 9)]
        for item in items:
            h.push(item)
        key, item = h.pop()
        assert key == 2 and item is items[1]

    def test_increase_key_requires_repush(self):
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        a, b = _Item(1), _Item(5)
        h.push(a)
        h.push(b)
        a.key = 10
        h.push(a)  # refresh
        key, item = h.pop()
        assert item is b and key == 5
        key, item = h.pop()
        assert item is a and key == 10
        assert not h

    def test_decrease_key(self):
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        a, b = _Item(8), _Item(5)
        h.push(a)
        h.push(b)
        a.key = 1
        h.push(a)
        assert h.pop()[1] is a

    def test_discard(self):
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        a, b = _Item(1), _Item(2)
        h.push(a)
        h.push(b)
        h.discard(a)
        assert len(h) == 1
        assert h.pop()[1] is b

    def test_peek_skims_stale(self):
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        a = _Item(1)
        h.push(a)
        a.key = 3
        h.push(a)
        key, item = h.peek()
        assert key == 3 and item is a

    def test_randomized_against_reference(self):
        rng = random.Random(0)
        h = LazyDeletionHeap(key_of=lambda item: item.key)
        live: dict[int, _Item] = {}
        for step in range(400):
            op = rng.random()
            if op < 0.5 or not live:
                item = _Item(rng.randint(0, 100))
                live[id(item)] = item
                h.push(item)
            elif op < 0.8:
                item = rng.choice(list(live.values()))
                item.key = rng.randint(0, 100)
                h.push(item)
            else:
                key, item = h.pop()
                assert key == item.key
                assert key == min(i.key for i in live.values())
                del live[id(item)]
        while live:
            key, item = h.pop()
            assert key == min(i.key for i in live.values())
            del live[id(item)]
