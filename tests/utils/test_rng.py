"""Tests for RNG helpers."""

import random

import pytest

from repro.utils.rng import make_rng, weighted_choice, zipf_weights


class TestMakeRng:
    def test_from_int(self):
        assert make_rng(7).random() == random.Random(7).random()

    def test_from_none(self):
        assert isinstance(make_rng(None), random.Random)

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng


class TestZipf:
    def test_shape(self):
        w = zipf_weights(4, exponent=1.0)
        assert w == [1.0, 0.5, pytest.approx(1 / 3), 0.25]

    def test_exponent_skews(self):
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.0)
        assert steep[0] / steep[-1] > flat[0] / flat[-1]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


def test_weighted_choice_respects_weights():
    rng = random.Random(0)
    picks = [
        weighted_choice(rng, ["a", "b"], [0.99, 0.01]) for _ in range(200)
    ]
    assert picks.count("a") > 150
