"""Tests for the named dataset ladder."""

import pytest

from repro.workloads.datasets import (
    PAPER_GD_SIZES,
    build_dataset,
    dataset_spec,
    default_real_dataset,
    default_synthetic_dataset,
)


class TestSpecs:
    def test_gd_spec(self):
        spec = dataset_spec("GD3", scale=1 / 100)
        assert spec.family == "citation"
        assert spec.num_nodes == PAPER_GD_SIZES["GD3"] // 100

    def test_gs_spec(self):
        spec = dataset_spec("GS2", scale=1 / 100)
        assert spec.family == "powerlaw"
        assert spec.num_labels == 200

    def test_minimum_size_floor(self):
        spec = dataset_spec("GD1", scale=1e-9)
        assert spec.num_nodes == 200

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_spec("GX9")

    def test_ladder_is_monotone(self):
        sizes = [
            dataset_spec(name, scale=1 / 50).num_nodes
            for name in ("GD1", "GD2", "GD3", "GD4", "GD5")
        ]
        assert sizes == sorted(sizes)


class TestBuilds:
    def test_build_deterministic(self):
        a = build_dataset("GS1", scale=1 / 100)
        b = build_dataset("GS1", scale=1 / 100)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_defaults(self):
        real = default_real_dataset(scale=1 / 100)
        synth = default_synthetic_dataset(scale=1 / 100)
        assert real.num_nodes == 1000
        assert synth.num_nodes == 1000
        # Citation graphs are DAGs; power-law graphs generally are not.
        assert all(t > h for t, h, _ in real.edges())
