"""Tests for query-set generation."""

import pytest

from repro.closure.transitive import TransitiveClosure
from repro.core.topk import topk_matches
from repro.closure.store import ClosureStore
from repro.exceptions import QueryError
from repro.graph.generators import citation_graph, powerlaw_graph
from repro.runtime.graph import build_runtime_graph
from repro.workloads.queries import (
    kgpm_query_suite,
    query_set,
    random_query_graph,
    random_query_tree,
)


@pytest.fixture(scope="module")
def closure():
    return TransitiveClosure(citation_graph(400, num_labels=40, seed=3))


class TestRandomQueryTree:
    def test_size_and_distinct_labels(self, closure):
        q = random_query_tree(closure, 6, seed=1)
        assert q.num_nodes == 6
        assert q.has_distinct_labels()

    def test_deterministic(self, closure):
        a = random_query_tree(closure, 5, seed=9)
        b = random_query_tree(closure, 5, seed=9)
        assert {u: a.label(u) for u in a.nodes()} == {
            u: b.label(u) for u in b.nodes()
        }

    def test_always_realizable(self, closure):
        store = ClosureStore(closure.graph, closure)
        for seed in range(5):
            q = random_query_tree(closure, 5, seed=seed)
            gr = build_runtime_graph(store, q)
            assert topk_matches(gr, 1), f"seed {seed} gave unmatchable query"

    def test_duplicate_labels_mode(self, closure):
        queries = [
            random_query_tree(closure, 8, distinct_labels=False, seed=s)
            for s in range(10)
        ]
        # At least one of ten queries should actually repeat a label.
        assert any(not q.has_distinct_labels() for q in queries)

    def test_invalid_size(self, closure):
        with pytest.raises(QueryError):
            random_query_tree(closure, 0)

    def test_impossible_size_raises(self, closure):
        with pytest.raises(QueryError, match="could not extract"):
            random_query_tree(closure, 10_000, max_attempts=3)

    def test_locality_zero_uniform_walk(self, closure):
        q = random_query_tree(closure, 4, seed=2, locality=0)
        assert q.num_nodes == 4


class TestQuerySet:
    def test_count_and_sizes(self, closure):
        qs = query_set(closure, size=4, count=5, seed=0)
        assert len(qs) == 5
        assert all(q.num_nodes == 4 for q in qs)

    def test_sets_differ(self, closure):
        qs = query_set(closure, size=4, count=5, seed=0)
        labelings = {tuple(sorted(map(str, (q.label(u) for u in q.nodes())))) for q in qs}
        assert len(labelings) > 1


class TestQueryGraphs:
    def test_random_query_graph(self, closure):
        qg = random_query_graph(closure, 5, extra_edges=2, seed=0)
        assert qg.num_nodes == 5
        assert qg.num_edges >= 4  # spanning tree edges at minimum

    def test_kgpm_suite(self):
        closure = TransitiveClosure(powerlaw_graph(400, num_labels=60, seed=2))
        suite = kgpm_query_suite(closure, seed=0)
        assert set(suite) == {"Q1", "Q2", "Q3", "Q4"}
        sizes = [suite[name].num_nodes for name in ("Q1", "Q2", "Q3", "Q4")]
        assert sizes == sorted(sizes)
